//! Crash-tolerant checkpoints for the exploration engines.
//!
//! A long exhaustive run is the heaviest artifact this crate produces,
//! and before this module a killed process threw all of it away. A
//! checkpoint snapshots everything an engine needs to continue — the
//! 64-shard visited set, the work frontier, the accumulated outcome
//! and deadlock sets, and the durable [`crate::ExplorationStats`]
//! counters — into one versioned, checksummed, zero-dependency file,
//! so that `kill -9` at any checkpoint boundary degrades a run into a
//! *resumable partial certificate* instead of nothing.
//!
//! ## Format
//!
//! One file, `weakord.ckpt`, in the checkpoint directory:
//!
//! ```text
//! [0..6)   magic  b"WOCKPT"
//! [6]      format version (currently 1)
//! [7]      reserved (0)
//! [8..16)  FNV-1a-64 checksum of every byte from offset 16 on (LE)
//! [16..24) configuration fingerprint (LE; see below)
//! [24]     engine kind: 0 = parallel sharded engine, 1 = reduced
//! [25..]   engine payload ([`Codec`]-encoded)
//! ```
//!
//! The **configuration fingerprint** hashes the program text (its
//! canonical unparse), the machine name, the state cap, and the
//! reduction mode. A resume refuses a checkpoint whose fingerprint
//! does not match the resuming run's configuration — continuing a
//! `wo-def2` exploration with an `sc` machine, a different program, or
//! a different cap would silently produce a certificate for the wrong
//! question. Thread count and wall-clock deadline are deliberately
//! *excluded*: a resumed run may use more workers or a fresh budget
//! without changing what is being proved.
//!
//! Serialization is the in-tree [`Codec`] trait (LEB128 varint
//! integers, length-prefixed sequences): the repo builds offline with
//! no serde, and the binary format round-trips machine states
//! byte-exactly where JSON would be both larger and lossier. Varints
//! matter beyond disk size: the lock-free explorer dedups on these
//! bytes, so every byte saved is saved again in the per-arc encode,
//! fingerprint, and payload-compare, and again in the spill file. A
//! typical litmus state (tiny values, short buffers) shrinks ~5x
//! versus the fixed-width v1 encoding.
//! Writes go to a temp file first and are published with an atomic
//! rename, so a crash *during* a checkpoint leaves the previous one
//! intact.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use weakord_core::{Loc, OpKind, ProcId, Value};
use weakord_progs::{unparse_program, Outcome, Program, ThreadState, N_REGS};

use crate::explore::{Limits, Reduction, TruncationReason};
use crate::fxhash::fingerprint;
use crate::machine::{InternalKind, InternalStep, Label, OpRecord};

/// Current on-disk format version. v2 switched the [`Codec`] integer
/// representation from fixed-width little-endian to LEB128 varints.
pub const CKPT_VERSION: u8 = 2;

const MAGIC: &[u8; 6] = b"WOCKPT";
/// Offset of the first checksummed byte.
const BODY_AT: usize = 16;
/// File name inside the checkpoint directory.
const FILE_NAME: &str = "weakord.ckpt";

/// The IO seam every durable checkpoint goes through.
///
/// The engines never touch the filesystem directly: `save`/`load`
/// route through this trait, so a caller can substitute a faulty or
/// instrumented store (the serve crate's `Vfs` adapters do exactly
/// that) without the engines knowing. The contract is small on
/// purpose — one crash-safe publish, one whole-file read, one
/// best-effort delete — so that every implementation can uphold it
/// under fault injection.
pub trait CkptStore: Send + Sync {
    /// Atomically publish `bytes` at `path`: after `Ok(())`, a crash
    /// at any later instant must surface either these bytes or a
    /// previously published version, never a torn mix.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// Read the entire file at `path`.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Remove the file at `path` (used to demote a corrupt checkpoint
    /// to a fresh start).
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;
}

/// Default [`CkptStore`]: the real filesystem, with the audited fsync
/// discipline. The temp file is `sync_all`'d *before* the rename (so
/// the rename never publishes bytes that have not hit the platter)
/// and the parent directory is fsynced *after* it (so the rename
/// itself — a directory-entry update — survives a crash too).
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskStore;

impl DiskStore {
    /// Fsync `dir` so a just-renamed directory entry is durable.
    /// Returns `Ok(())` on platforms/filesystems where opening a
    /// directory for sync is not supported.
    pub fn sync_parent_dir(dir: &Path) -> std::io::Result<()> {
        match std::fs::File::open(dir) {
            Ok(d) => d.sync_all(),
            // Not being able to open the directory (e.g. exotic
            // filesystems) must not fail the write that already
            // landed; the rename is still atomic, just not yet
            // guaranteed durable.
            Err(_) => Ok(()),
        }
    }
}

impl CkptStore for DiskStore {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let parent = path.parent().unwrap_or_else(|| Path::new("."));
        std::fs::create_dir_all(parent)?;
        let tmp = path.with_extension("tmp");
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        DiskStore::sync_parent_dir(parent)
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// How an exploration persists and restores its progress.
#[derive(Clone)]
pub struct CheckpointCfg {
    /// Directory the checkpoint file lives in (created if missing).
    pub dir: PathBuf,
    /// Autosave period, in admitted states; `0` disables periodic
    /// saves (a final checkpoint is still written when the run stops,
    /// so deadline-truncated runs are always resumable).
    pub every: usize,
    /// Test hook: stop the run with
    /// [`TruncationReason::Resumable`] after this many periodic
    /// checkpoints have been written. This is how the kill/resume
    /// equivalence harness injects a deterministic "crash" exactly at
    /// a checkpoint boundary.
    pub abort_after: Option<u32>,
    /// The store checkpoint IO goes through; `None` means the real
    /// filesystem ([`DiskStore`]). Ignored by `Debug`/`PartialEq`:
    /// two configs that checkpoint the same file with the same cadence
    /// describe the same run, whatever disk they land on.
    pub store: Option<Arc<dyn CkptStore>>,
}

impl fmt::Debug for CheckpointCfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointCfg")
            .field("dir", &self.dir)
            .field("every", &self.every)
            .field("abort_after", &self.abort_after)
            .field("store", &self.store.as_ref().map(|_| "<custom>"))
            .finish()
    }
}

impl PartialEq for CheckpointCfg {
    fn eq(&self, other: &Self) -> bool {
        self.dir == other.dir && self.every == other.every && self.abort_after == other.abort_after
    }
}

impl Eq for CheckpointCfg {}

impl CheckpointCfg {
    /// Checkpoint into `dir` every 10 000 admitted states.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointCfg { dir: dir.into(), every: 10_000, abort_after: None, store: None }
    }

    /// Same, with an explicit autosave period.
    pub fn every(dir: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointCfg { dir: dir.into(), every, abort_after: None, store: None }
    }

    /// Route this config's checkpoint IO through `store`.
    pub fn with_store(mut self, store: Arc<dyn CkptStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Path of the checkpoint file.
    pub fn file(&self) -> PathBuf {
        self.dir.join(FILE_NAME)
    }

    /// The store this config's IO goes through.
    pub(crate) fn store(&self) -> Arc<dyn CkptStore> {
        self.store.clone().unwrap_or_else(|| Arc::new(DiskStore))
    }
}

/// Why a checkpoint could not be written or used.
///
/// Every variant renders as a one-line, actionable message — a corrupt
/// or mismatched checkpoint must *never* take down the tool with a
/// panic.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure, with the path and the underlying error.
    Io(PathBuf, std::io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not one this build reads.
    BadVersion(u8),
    /// The checksum does not cover the bytes on disk: the file is
    /// corrupt (torn write, bit rot, or truncation past the header).
    BadChecksum {
        /// Checksum the header promises.
        expected: u64,
        /// Checksum of the bytes actually on disk.
        found: u64,
    },
    /// The checkpoint was taken under a different machine, program,
    /// state cap, or reduction mode than the run trying to resume it.
    ConfigMismatch {
        /// Fingerprint the resuming run computed for itself.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
    /// The checkpoint belongs to the other engine (parallel vs
    /// reduced).
    EngineMismatch {
        /// Engine kind byte the resuming run expected.
        expected: u8,
        /// Engine kind byte found in the file.
        found: u8,
    },
    /// The payload decoded inconsistently (e.g. ran out of bytes or
    /// contained an out-of-range discriminant) despite a good
    /// checksum.
    Malformed(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(path, e) => write!(f, "checkpoint I/O at {}: {e}", path.display()),
            CheckpointError::BadMagic => {
                write!(f, "not a weakord checkpoint (bad magic); refusing to resume")
            }
            CheckpointError::BadVersion(v) => write!(
                f,
                "checkpoint format version {v} is not supported (this build reads \
                 version {CKPT_VERSION}); re-run without --resume"
            ),
            CheckpointError::BadChecksum { expected, found } => write!(
                f,
                "checkpoint is corrupt: checksum {found:#018x} != recorded {expected:#018x}; \
                 delete it and re-run without --resume"
            ),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different configuration: its fingerprint is \
                 {found:#018x}, this run computed {expected:#018x} — machine, program, state \
                 cap, and reduction mode must all match to resume"
            ),
            CheckpointError::EngineMismatch { expected, found } => write!(
                f,
                "checkpoint was written by the {} engine but this run resumes with the {} \
                 engine (the --reduce flag must match the original run)",
                engine_name(*found),
                engine_name(*expected),
            ),
            CheckpointError::Malformed(what) => {
                write!(f, "checkpoint payload is malformed ({what}); delete it and re-run")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Human name of an engine kind byte (unknown bytes print as such
/// rather than panicking — this renders inside error messages).
fn engine_name(byte: u8) -> &'static str {
    match byte {
        0 => "parallel",
        1 => "reduced",
        _ => "unknown",
    }
}

/// FNV-1a 64-bit, the format's integrity check: tiny, dependency-free,
/// and plenty for detecting torn writes and bit rot (it is not a MAC).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The configuration a checkpoint is pinned to: everything that
/// changes *what is being explored*, nothing that only changes how
/// fast (threads, deadline).
pub fn config_fingerprint(machine_name: &str, prog: &Program, limits: &Limits) -> u64 {
    let reduction = match limits.reduction {
        Reduction::Full => "full",
        Reduction::Ample => "ample",
    };
    fingerprint(&(machine_name, unparse_program(prog), limits.max_states as u64, reduction))
}

// ---------------------------------------------------------------------
// The in-tree serialization trait.
// ---------------------------------------------------------------------

/// Decode-side failure: the byte stream did not contain a valid value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

/// Cursor over an encoded byte buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError("unexpected end of payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// In-tree binary serialization: LEB128 varint integers, varint
/// length prefixes on sequences. Implemented by everything a
/// checkpoint stores, including every machine's state type.
///
/// The encoding is *canonical*: `encode` is a deterministic function
/// of the value and emits the minimal varint form, so equal values
/// always produce equal bytes and (with the self-delimiting property)
/// distinct values produce distinct byte strings even under
/// concatenation. The exact visited set relies on this — byte
/// equality of encodings *is* state equality.
///
/// `decode` must tolerate arbitrary bytes without panicking — the
/// checksum catches accidental corruption, but the decoder is still
/// the last line of defense and returns [`DecodeError`] instead.
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reads one value back.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

impl Codec for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(r.take(1)?[0])
    }
}

/// Appends `v` in minimal LEB128 form: 7 value bits per byte, high bit
/// set on every byte but the last. Small values — almost everything a
/// machine state holds — cost one byte instead of a fixed width.
fn encode_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn decode_varint(r: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let b = r.take(1)?[0];
        let chunk = u64::from(b & 0x7f);
        // The 10th byte holds bit 63 only; anything above overflows.
        if shift == 63 && chunk > 1 {
            return Err(DecodeError("varint overflows u64"));
        }
        v |= chunk << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError("varint too long"));
        }
    }
}

macro_rules! varint_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                encode_varint(u64::from(*self), out);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                <$t>::try_from(decode_varint(r)?)
                    .map_err(|_| DecodeError("varint out of range for type"))
            }
        }
    )*};
}

varint_codec!(u16, u32, u64);

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        usize::try_from(u64::decode(r)?).map_err(|_| DecodeError("usize overflow"))
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError("bool out of range")),
        }
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(DecodeError("Option tag out of range")),
        }
    }
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let n = usize::try_from(u32::decode(r)?).map_err(|_| DecodeError("length overflow"))?;
    // Each element needs at least one byte; a length promising more
    // elements than bytes remain is malformed (and would otherwise let
    // a corrupt length pre-allocate unbounded memory).
    if n > r.remaining() {
        return Err(DecodeError("sequence length exceeds payload"));
    }
    Ok(n)
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (u32::try_from(self.len()).expect("sequence too long for checkpoint")).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = decode_len(r)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Codec> Codec for VecDeque<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (u32::try_from(self.len()).expect("sequence too long for checkpoint")).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = decode_len(r)?;
        let mut v = VecDeque::with_capacity(n);
        for _ in 0..n {
            v.push_back(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Codec for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        self.get().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Value::new(u64::decode(r)?))
    }
}

impl Codec for Loc {
    fn encode(&self, out: &mut Vec<u8>) {
        self.raw().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let raw = u32::decode(r)?;
        // `Loc::new` panics on the reserved augment index; a corrupt
        // checkpoint must not.
        if raw == u32::MAX {
            return Err(DecodeError("reserved location index"));
        }
        Ok(Loc::new(raw))
    }
}

impl Codec for ProcId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.raw().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProcId::new(u16::decode(r)?))
    }
}

impl Codec for [Value; N_REGS] {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let mut a = [Value::ZERO; N_REGS];
        for slot in &mut a {
            *slot = Value::decode(r)?;
        }
        Ok(a)
    }
}

impl Codec for ThreadState {
    fn encode(&self, out: &mut Vec<u8>) {
        let (pc, regs, status) = self.snapshot();
        pc.encode(out);
        regs.encode(out);
        status.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let pc = u32::decode(r)?;
        let regs = <[Value; N_REGS]>::decode(r)?;
        let status = u8::decode(r)?;
        ThreadState::restore(pc, regs, status).ok_or(DecodeError("thread status out of range"))
    }
}

impl Codec for Outcome {
    fn encode(&self, out: &mut Vec<u8>) {
        self.regs.encode(out);
        self.memory.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Outcome { regs: Vec::decode(r)?, memory: Vec::decode(r)? })
    }
}

impl Codec for OpKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            OpKind::DataRead => 0,
            OpKind::DataWrite => 1,
            OpKind::SyncRead => 2,
            OpKind::SyncWrite => 3,
            OpKind::SyncRmw => 4,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => OpKind::DataRead,
            1 => OpKind::DataWrite,
            2 => OpKind::SyncRead,
            3 => OpKind::SyncWrite,
            4 => OpKind::SyncRmw,
            _ => return Err(DecodeError("OpKind out of range")),
        })
    }
}

impl Codec for OpRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        self.proc.encode(out);
        self.kind.encode(out);
        self.loc.encode(out);
        self.read_value.encode(out);
        self.written_value.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(OpRecord {
            proc: ProcId::decode(r)?,
            kind: OpKind::decode(r)?,
            loc: Loc::decode(r)?,
            read_value: Option::decode(r)?,
            written_value: Option::decode(r)?,
        })
    }
}

impl Codec for InternalKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            InternalKind::Halt => 0,
            InternalKind::Drain => 1,
            InternalKind::Deliver => 2,
            InternalKind::Fence => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => InternalKind::Halt,
            1 => InternalKind::Drain,
            2 => InternalKind::Deliver,
            3 => InternalKind::Fence,
            _ => return Err(DecodeError("InternalKind out of range")),
        })
    }
}

impl Codec for InternalStep {
    fn encode(&self, out: &mut Vec<u8>) {
        self.proc.encode(out);
        self.target.encode(out);
        self.loc.encode(out);
        self.kind.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(InternalStep {
            proc: ProcId::decode(r)?,
            target: Option::decode(r)?,
            loc: Option::decode(r)?,
            kind: InternalKind::decode(r)?,
        })
    }
}

impl Codec for Label {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Label::Op(rec) => {
                out.push(0);
                rec.encode(out);
            }
            Label::Internal(step) => {
                out.push(1);
                step.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => Label::Op(OpRecord::decode(r)?),
            1 => Label::Internal(InternalStep::decode(r)?),
            _ => return Err(DecodeError("Label tag out of range")),
        })
    }
}

impl Codec for TruncationReason {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            TruncationReason::MaxStates => 0,
            TruncationReason::Deadline => 1,
            TruncationReason::WorkerPanic => 2,
            TruncationReason::Resumable => 3,
            TruncationReason::Cancelled => 4,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => TruncationReason::MaxStates,
            1 => TruncationReason::Deadline,
            2 => TruncationReason::WorkerPanic,
            3 => TruncationReason::Resumable,
            4 => TruncationReason::Cancelled,
            _ => return Err(DecodeError("TruncationReason out of range")),
        })
    }
}

// ---------------------------------------------------------------------
// Snapshots: what each engine persists.
// ---------------------------------------------------------------------

/// Durable [`crate::ExplorationStats`] counters carried across a
/// suspend/resume boundary. Purely diagnostic quantities that restart
/// from zero (throughput, per-run timing) are not here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistedCounters {
    /// Distinct states admitted so far.
    pub distinct: u64,
    /// Cumulative dedup hits.
    pub dedup_hits: u64,
    /// Cumulative dedup probes.
    pub dedup_probes: u64,
    /// Cumulative arcs pruned by the reduction.
    pub pruned_arcs: u64,
    /// Cumulative successful work steals.
    pub steals: u64,
    /// Peak frontier length seen so far.
    pub peak_frontier: u64,
    /// Wall-clock nanoseconds of exploration before this checkpoint.
    pub elapsed_nanos: u64,
    /// Checkpoints written so far (including this one).
    pub checkpoints: u32,
    /// Wall-clock nanoseconds spent serializing/writing checkpoints.
    pub ckpt_write_nanos: u64,
    /// Worker panics absorbed so far.
    pub worker_panics: u32,
    /// Worst observed deadline overshoot, in nanoseconds.
    pub overshoot_nanos: u64,
}

impl Codec for PersistedCounters {
    fn encode(&self, out: &mut Vec<u8>) {
        self.distinct.encode(out);
        self.dedup_hits.encode(out);
        self.dedup_probes.encode(out);
        self.pruned_arcs.encode(out);
        self.steals.encode(out);
        self.peak_frontier.encode(out);
        self.elapsed_nanos.encode(out);
        self.checkpoints.encode(out);
        self.ckpt_write_nanos.encode(out);
        self.worker_panics.encode(out);
        self.overshoot_nanos.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PersistedCounters {
            distinct: u64::decode(r)?,
            dedup_hits: u64::decode(r)?,
            dedup_probes: u64::decode(r)?,
            pruned_arcs: u64::decode(r)?,
            steals: u64::decode(r)?,
            peak_frontier: u64::decode(r)?,
            elapsed_nanos: u64::decode(r)?,
            checkpoints: u32::decode(r)?,
            ckpt_write_nanos: u64::decode(r)?,
            worker_panics: u32::decode(r)?,
            overshoot_nanos: u64::decode(r)?,
        })
    }
}

impl PersistedCounters {
    /// The wall-clock already spent before this checkpoint.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.elapsed_nanos)
    }
}

/// A quiescent image of the parallel engine: per-shard visited sets
/// plus the merged frontier. At the rendezvous that produces one, the
/// frontier holds *exactly* the admitted-but-unexpanded states, so
/// re-seeding both sets reproduces the remaining exploration.
#[derive(Debug, Clone)]
pub struct ParallelSnapshot<S> {
    /// Outcomes collected so far.
    pub outcomes: BTreeSet<Outcome>,
    /// Deadlocked states counted so far.
    pub deadlocks: u64,
    /// Durable stat counters.
    pub counters: PersistedCounters,
    /// Why the checkpointed run stopped, if it did (informational;
    /// a resume clears it and keeps exploring).
    pub truncation: Option<TruncationReason>,
    /// Visited set contents, per shard ([`crate::N_SHARDS`] entries).
    pub shards: Vec<Vec<S>>,
    /// Admitted states not yet expanded.
    pub frontier: Vec<S>,
}

/// A snapshot of the reduced (sleep-set) engine: the visited map with
/// each state's sleep set, plus the DFS stack *in order* — the reduced
/// search is deterministic, so replaying the exact stack continues the
/// run as if it was never interrupted.
#[derive(Debug, Clone)]
pub struct ReducedSnapshot<S> {
    /// Outcomes collected so far.
    pub outcomes: BTreeSet<Outcome>,
    /// Deadlocked states counted so far.
    pub deadlocks: u64,
    /// Durable stat counters.
    pub counters: PersistedCounters,
    /// Why the checkpointed run stopped, if it did.
    pub truncation: Option<TruncationReason>,
    /// Visited states with the sleep set each was last expanded with.
    pub visited: Vec<(S, Vec<Label>)>,
    /// The DFS stack, bottom first.
    pub stack: Vec<(S, Vec<Label>)>,
}

/// Which engine wrote a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Snapshot<S> {
    /// The parallel sharded engine ([`crate::explore`]).
    Parallel(ParallelSnapshot<S>),
    /// The reduced sleep-set engine ([`crate::explore_reduced`]).
    Reduced(ReducedSnapshot<S>),
}

impl<S> PartialEq for ParallelSnapshot<S>
where
    S: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.outcomes == other.outcomes
            && self.deadlocks == other.deadlocks
            && self.counters == other.counters
            && self.truncation == other.truncation
            && self.shards == other.shards
            && self.frontier == other.frontier
    }
}

impl<S: PartialEq> Eq for ParallelSnapshot<S> {}

impl<S> PartialEq for ReducedSnapshot<S>
where
    S: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.outcomes == other.outcomes
            && self.deadlocks == other.deadlocks
            && self.counters == other.counters
            && self.truncation == other.truncation
            && self.visited == other.visited
            && self.stack == other.stack
    }
}

impl<S: PartialEq> Eq for ReducedSnapshot<S> {}

fn encode_outcomes(outcomes: &BTreeSet<Outcome>, out: &mut Vec<u8>) {
    (u32::try_from(outcomes.len()).expect("outcome set too large")).encode(out);
    for o in outcomes {
        o.encode(out);
    }
}

fn decode_outcomes(r: &mut Reader<'_>) -> Result<BTreeSet<Outcome>, DecodeError> {
    let n = decode_len(r)?;
    let mut set = BTreeSet::new();
    for _ in 0..n {
        set.insert(Outcome::decode(r)?);
    }
    Ok(set)
}

impl<S: Codec> Codec for Snapshot<S> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Snapshot::Parallel(p) => {
                out.push(0);
                encode_outcomes(&p.outcomes, out);
                p.deadlocks.encode(out);
                p.counters.encode(out);
                p.truncation.encode(out);
                p.shards.encode(out);
                p.frontier.encode(out);
            }
            Snapshot::Reduced(q) => {
                out.push(1);
                encode_outcomes(&q.outcomes, out);
                q.deadlocks.encode(out);
                q.counters.encode(out);
                q.truncation.encode(out);
                q.visited.encode(out);
                q.stack.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => Snapshot::Parallel(ParallelSnapshot {
                outcomes: decode_outcomes(r)?,
                deadlocks: u64::decode(r)?,
                counters: PersistedCounters::decode(r)?,
                truncation: Option::decode(r)?,
                shards: Vec::decode(r)?,
                frontier: Vec::decode(r)?,
            }),
            1 => Snapshot::Reduced(ReducedSnapshot {
                outcomes: decode_outcomes(r)?,
                deadlocks: u64::decode(r)?,
                counters: PersistedCounters::decode(r)?,
                truncation: Option::decode(r)?,
                visited: Vec::decode(r)?,
                stack: Vec::decode(r)?,
            }),
            _ => return Err(DecodeError("engine kind out of range")),
        })
    }
}

impl<S> Snapshot<S> {
    /// The engine tag byte, for [`CheckpointError::EngineMismatch`]
    /// reporting.
    pub(crate) fn engine_byte(&self) -> u8 {
        match self {
            Snapshot::Parallel(_) => 0,
            Snapshot::Reduced(_) => 1,
        }
    }
}

// ---------------------------------------------------------------------
// File I/O.
// ---------------------------------------------------------------------

/// Serializes `snap` and atomically publishes it at `cfg.file()`
/// through the config's [`CkptStore`] (temp file + fsync + rename +
/// parent-directory fsync on the default [`DiskStore`]: a crash
/// mid-write leaves the previous checkpoint intact, and a crash
/// after the write cannot lose it). Creates the directory if needed.
pub fn save<S: Codec>(
    cfg: &CheckpointCfg,
    config_fp: u64,
    snap: &Snapshot<S>,
) -> Result<(), CheckpointError> {
    let mut bytes = Vec::with_capacity(4096);
    bytes.extend_from_slice(MAGIC);
    bytes.push(CKPT_VERSION);
    bytes.push(0); // reserved
    bytes.extend_from_slice(&[0u8; 8]); // checksum backpatched below
    config_fp.encode(&mut bytes);
    snap.encode(&mut bytes);
    let sum = fnv1a(&bytes[BODY_AT..]);
    bytes[8..16].copy_from_slice(&sum.to_le_bytes());

    let path = cfg.file();
    cfg.store().write_atomic(&path, &bytes).map_err(|e| CheckpointError::Io(path, e))
}

/// Loads, verifies (magic, version, checksum, configuration
/// fingerprint), and decodes the checkpoint at `cfg.file()`.
pub fn load<S: Codec>(cfg: &CheckpointCfg, config_fp: u64) -> Result<Snapshot<S>, CheckpointError> {
    let path = cfg.file();
    let bytes = cfg.store().read(&path).map_err(|e| CheckpointError::Io(path.clone(), e))?;
    let mut r = verify_header(&bytes)?;
    let stored_fp = u64::decode(&mut r).map_err(|e| CheckpointError::Malformed(e.0))?;
    if stored_fp != config_fp {
        return Err(CheckpointError::ConfigMismatch { expected: config_fp, found: stored_fp });
    }
    Snapshot::decode(&mut r).map_err(|e| CheckpointError::Malformed(e.0))
}

/// Checks magic, version, and checksum; on success returns a reader
/// positioned at the checksummed body (fingerprint first).
fn verify_header(bytes: &[u8]) -> Result<Reader<'_>, CheckpointError> {
    if bytes.len() < BODY_AT || &bytes[..6] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if bytes[6] != CKPT_VERSION {
        return Err(CheckpointError::BadVersion(bytes[6]));
    }
    let expected = u64::from_le_bytes(bytes[8..16].try_into().expect("sized header"));
    let found = fnv1a(&bytes[BODY_AT..]);
    if expected != found {
        return Err(CheckpointError::BadChecksum { expected, found });
    }
    Ok(Reader::new(&bytes[BODY_AT..]))
}

/// Validates a checkpoint image without decoding its engine payload:
/// magic, version, whole-body checksum. This is what a scrub pass
/// wants — "is this file intact?" — independent of which run's
/// fingerprint it belongs to.
pub fn verify_bytes(bytes: &[u8]) -> Result<(), CheckpointError> {
    verify_header(bytes).map(|_| ())
}

/// [`verify_bytes`] for a file on disk.
pub fn verify_file(path: &Path) -> Result<(), CheckpointError> {
    let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(path.to_path_buf(), e))?;
    verify_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        42u8.encode(&mut buf);
        7u16.encode(&mut buf);
        9u32.encode(&mut buf);
        u64::MAX.encode(&mut buf);
        true.encode(&mut buf);
        Some(3u32).encode(&mut buf);
        Option::<u32>::None.encode(&mut buf);
        vec![1u64, 2, 3].encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(u8::decode(&mut r).unwrap(), 42);
        assert_eq!(u16::decode(&mut r).unwrap(), 7);
        assert_eq!(u32::decode(&mut r).unwrap(), 9);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(Option::<u32>::decode(&mut r).unwrap(), Some(3));
        assert_eq!(Option::<u32>::decode(&mut r).unwrap(), None);
        assert_eq!(Vec::<u64>::decode(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn mismatch_errors_name_both_sides() {
        let msg =
            CheckpointError::ConfigMismatch { expected: 0xdead_beef, found: 0xcafe }.to_string();
        assert!(msg.contains("0x00000000deadbeef"), "{msg}");
        assert!(msg.contains("0x000000000000cafe"), "{msg}");
        let msg = CheckpointError::EngineMismatch { expected: 1, found: 0 }.to_string();
        assert!(msg.contains("parallel"), "{msg}");
        assert!(msg.contains("reduced"), "{msg}");
    }

    #[test]
    fn truncated_payload_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        vec![1u64, 2, 3].encode(&mut buf);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(Vec::<u64>::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // A 4 GiB length with a 4-byte payload must not allocate.
        let mut buf = Vec::new();
        u32::MAX.encode(&mut buf);
        buf.extend_from_slice(&[0; 4]);
        assert!(Vec::<u8>::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn labels_round_trip() {
        let labels = vec![
            Label::Op(OpRecord {
                proc: ProcId::new(1),
                kind: OpKind::SyncRmw,
                loc: Loc::new(3),
                read_value: Some(Value::new(7)),
                written_value: Some(Value::new(9)),
            }),
            Label::Internal(InternalStep::halt(ProcId::new(0))),
            Label::Internal(InternalStep::drain(ProcId::new(2), Loc::new(1))),
            Label::Internal(InternalStep::deliver(ProcId::new(0), ProcId::new(1), Loc::new(0))),
        ];
        let mut buf = Vec::new();
        labels.encode(&mut buf);
        assert_eq!(Vec::<Label>::decode(&mut Reader::new(&buf)).unwrap(), labels);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fingerprint_pins_machine_program_cap_and_reduction() {
        let lit = weakord_progs::litmus::fig1_dekker();
        let base = Limits::default();
        let fp = config_fingerprint("sc", &lit.program, &base);
        assert_eq!(fp, config_fingerprint("sc", &lit.program, &base));
        assert_ne!(fp, config_fingerprint("wo-def2", &lit.program, &base));
        assert_ne!(fp, config_fingerprint("sc", &lit.program, &Limits { max_states: 17, ..base }));
        assert_ne!(
            fp,
            config_fingerprint("sc", &lit.program, &Limits { reduction: Reduction::Ample, ..base })
        );
        // Threads and deadline are resources, not semantics.
        assert_eq!(fp, config_fingerprint("sc", &lit.program, &Limits { threads: 9, ..base }));
    }
}
