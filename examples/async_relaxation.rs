//! Asynchronous algorithms on weakly ordered hardware.
//!
//! Section 3 concedes that some programming models — the asynchronous
//! algorithms of DeLeone & Mangasarian — are not naturally expressed as
//! sequentially consistent programs, then predicts: "we expect,
//! however, it will be straightforward to implement weakly ordered
//! hardware to obtain reasonable results for asynchronous algorithms."
//!
//! This example tests that prediction with a value-flooding computation
//! that uses **no synchronization at all**: every read is an ordinary
//! data access, the program is racy by design, and staleness merely
//! delays convergence. We run it on every policy and report convergence
//! time — racy, yet always right.
//!
//! Run with: `cargo run --example async_relaxation`

use weakord::coherence::{CoherentMachine, Config, Policy};
use weakord::core::{HbMode, Value};
use weakord::mc::{check_program_drf, TraceLimits};
use weakord::progs::workloads::{async_flood, AsyncFloodParams};

fn main() {
    let prog = async_flood(AsyncFloodParams { n_procs: 8, poll_work: 5 });
    let verdict = check_program_drf(&prog, HbMode::Drf0, TraceLimits::default());
    println!(
        "async-flood over 8 processors: the program is {} (by design)\n",
        if verdict.is_race_free() { "race-free?!" } else { "RACY" }
    );
    println!("{:<10} {:>9} {:>10}  all cells set?", "policy", "cycles", "misses");
    for policy in [Policy::Sc, Policy::Def1, Policy::def2(), Policy::def2_drf1()] {
        let cfg = Config { policy, seed: 3, ..Config::default() };
        let r = CoherentMachine::new(&prog, cfg).run().expect("terminates");
        let converged = r.outcome.memory.iter().all(|v| *v == Value::new(1));
        let misses: u64 = r.proc_stats.iter().map(|s| s.misses).sum();
        println!(
            "{:<10} {:>9} {:>10}  {}",
            policy.name(),
            r.cycles,
            misses,
            if converged { "yes" } else { "NO — wrong result!" }
        );
        assert!(converged);
    }
    println!(
        "\nThe paper's expectation holds: weak ordering returns 'random values'\n\
         only in the formal sense — the protocol still propagates every write,\n\
         so an algorithm that tolerates staleness converges on every policy."
    );
}
