//! The Data-Race-Free-0 synchronization model (Definition 3) and its
//! checker.
//!
//! > A program obeys the synchronization model Data-Race-Free-0 (DRF0),
//! > if and only if (1) all synchronization operations are recognizable
//! > by the hardware and each accesses exactly one memory location, and
//! > (2) for any execution on the idealized system (where all memory
//! > accesses are executed atomically and in program order), all
//! > conflicting accesses are ordered by the happens-before relation
//! > corresponding to the execution.
//!
//! Condition (1) holds by construction in this framework (synchronization
//! operations are explicit [`crate::OpKind`] variants on a single
//! location). This module checks condition (2) for a given idealized
//! execution; checking a *program* means checking every idealized
//! execution, which the model checker in `weakord-mc` enumerates.

use std::fmt;

use crate::exec::IdealizedExecution;
use crate::hb::{HappensBefore, HbMode};
use crate::ids::{Loc, OpId};

/// A pair of conflicting accesses left unordered by happens-before —
/// a data race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Race {
    /// The earlier access (by completion order in the witnessing
    /// idealized execution).
    pub first: OpId,
    /// The later access.
    pub second: OpId,
    /// The location both access.
    pub loc: Loc,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "race on {} between {} and {}", self.loc, self.first, self.second)
    }
}

/// Outcome of checking one idealized execution against a data-race-free
/// synchronization model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrfReport {
    /// Every unordered conflicting pair found (empty = execution obeys
    /// the model).
    pub races: Vec<Race>,
    /// Number of conflicting pairs examined.
    pub conflicting_pairs: usize,
}

impl DrfReport {
    /// Returns `true` if no races were found.
    pub fn is_race_free(&self) -> bool {
        self.races.is_empty()
    }
}

impl fmt::Display for DrfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_race_free() {
            write!(f, "race-free ({} conflicting pairs, all ordered)", self.conflicting_pairs)
        } else {
            writeln!(
                f,
                "{} race(s) among {} conflicting pairs:",
                self.races.len(),
                self.conflicting_pairs
            )?;
            for r in &self.races {
                writeln!(f, "  {r}")?;
            }
            Ok(())
        }
    }
}

/// Checks Definition 3 condition (2) for one idealized execution: every
/// pair of conflicting accesses must be ordered by the happens-before
/// relation corresponding to the execution.
///
/// Synchronization operations on the same location conflict too, but
/// under [`HbMode::Drf0`] they are always ordered by `so ⊆ hb`; under
/// [`HbMode::Drf1`] sync-sync pairs are exempt (the refined model
/// deliberately leaves e.g. two `Test`s unordered without calling that a
/// race — they are still hardware-recognizable synchronization).
///
/// The execution is augmented per Section 4 before checking, so races
/// against the initial or final state of memory are found as well.
pub fn check_drf(exec: &IdealizedExecution, mode: HbMode) -> DrfReport {
    check_drf_preaugmented(&exec.augment(), mode)
}

/// Like [`check_drf`] but assumes `exec` was already augmented (or that
/// initial/final-state races are not of interest). Race op ids refer to
/// the supplied execution.
pub fn check_drf_preaugmented(exec: &IdealizedExecution, mode: HbMode) -> DrfReport {
    let hb = HappensBefore::compute(exec, mode);
    // Group ops per location; only same-location pairs can conflict.
    let mut per_loc: std::collections::HashMap<Loc, Vec<OpId>> = std::collections::HashMap::new();
    for op in exec.ops() {
        per_loc.entry(op.loc).or_default().push(op.id);
    }
    let mut races = Vec::new();
    let mut conflicting_pairs = 0usize;
    for ops in per_loc.values() {
        for (i, &a) in ops.iter().enumerate() {
            let oa = exec.op(a);
            for &b in &ops[i + 1..] {
                let ob = exec.op(b);
                if !oa.conflicts_with(ob) {
                    continue;
                }
                if mode == HbMode::Drf1 && oa.is_sync() && ob.is_sync() {
                    continue;
                }
                conflicting_pairs += 1;
                if !hb.ordered_either(a, b) {
                    races.push(Race { first: a, second: b, loc: oa.loc });
                }
            }
        }
    }
    races.sort_unstable_by_key(|r| (r.first, r.second));
    DrfReport { races, conflicting_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecBuilder;
    use crate::ids::{ProcId, Value};

    const P0: ProcId = ProcId::new(0);
    const P1: ProcId = ProcId::new(1);

    fn loc(i: u32) -> Loc {
        Loc::new(i)
    }

    #[test]
    fn properly_synchronized_handoff_is_race_free() {
        let (x, s) = (loc(0), loc(1));
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.sync_rmw(P0, s);
        b.sync_rmw(P1, s);
        b.data_read(P1, x);
        let e = b.finish().unwrap();
        let report = check_drf(&e, HbMode::Drf0);
        assert!(report.is_race_free(), "{report}");
        assert!(report.conflicting_pairs > 0);
    }

    #[test]
    fn unsynchronized_write_read_races() {
        let x = loc(0);
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.data_read(P1, x);
        let e = b.finish().unwrap();
        let report = check_drf(&e, HbMode::Drf0);
        assert!(!report.is_race_free());
        // Exactly one race pair between the program's own accesses; the
        // augmentation orders init/final ops so they add no races.
        assert_eq!(report.races.len(), 1);
        assert_eq!(report.races[0].loc, x);
    }

    #[test]
    fn write_write_race_detected() {
        let x = loc(0);
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.data_write(P1, x, Value::new(2));
        let e = b.finish().unwrap();
        assert!(!check_drf(&e, HbMode::Drf0).is_race_free());
    }

    #[test]
    fn read_read_is_not_a_conflict() {
        let x = loc(0);
        let mut b = ExecBuilder::new(2);
        b.data_read(P0, x);
        b.data_read(P1, x);
        let e = b.finish().unwrap();
        let report = check_drf(&e, HbMode::Drf0);
        assert!(report.is_race_free());
    }

    #[test]
    fn same_processor_conflicts_ordered_by_po() {
        let x = loc(0);
        let mut b = ExecBuilder::new(1);
        b.data_write(P0, x, Value::new(1));
        b.data_read(P0, x);
        b.data_write(P0, x, Value::new(2));
        let e = b.finish().unwrap();
        assert!(check_drf(&e, HbMode::Drf0).is_race_free());
    }

    #[test]
    fn sync_data_mixed_access_to_same_location_races_without_ordering() {
        // P0 writes x as data; P1 uses x as a sync location. The pair
        // conflicts (not both reads) and nothing orders them: race.
        let x = loc(0);
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.sync_rmw(P1, x);
        let e = b.finish().unwrap();
        let report = check_drf(&e, HbMode::Drf0);
        assert!(!report.is_race_free());
    }

    #[test]
    fn drf1_exempts_sync_sync_pairs_but_keeps_data_races() {
        // Two Tests on s from different procs: unordered under DRF1's hb
        // but not a race (both are syncs).
        let s = loc(0);
        let mut b = ExecBuilder::new(2);
        b.sync_read(P0, s);
        b.sync_read(P1, s);
        let e = b.finish().unwrap();
        assert!(check_drf(&e, HbMode::Drf1).is_race_free());
        // But a data race is still a race under DRF1.
        let x = loc(1);
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.data_read(P1, x);
        let e = b.finish().unwrap();
        assert!(!check_drf(&e, HbMode::Drf1).is_race_free());
    }

    #[test]
    fn drf1_is_stricter_about_read_only_sync_releases() {
        // Race-free under DRF0 (the Sr/Srw pair orders the data ops),
        // racy under DRF1 (read-only sync does not release).
        let (x, s) = (loc(0), loc(1));
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.sync_read(P0, s);
        b.sync_rmw(P1, s);
        b.data_read(P1, x);
        let e = b.finish().unwrap();
        assert!(check_drf(&e, HbMode::Drf0).is_race_free());
        assert!(!check_drf(&e, HbMode::Drf1).is_race_free());
    }

    #[test]
    fn figure_2a_obeys_drf0() {
        let e = crate::figures::figure_2a();
        let report = check_drf(&e, HbMode::Drf0);
        assert!(report.is_race_free(), "{report}");
    }

    #[test]
    fn figure_2b_violates_drf0() {
        let e = crate::figures::figure_2b();
        let report = check_drf(&e, HbMode::Drf0);
        assert!(!report.is_race_free());
        assert!(report.races.len() >= 2, "{report}");
    }

    #[test]
    fn report_display_formats() {
        let x = loc(0);
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.data_read(P1, x);
        let e = b.finish().unwrap();
        let report = check_drf(&e, HbMode::Drf0);
        let s = report.to_string();
        assert!(s.contains("race"), "{s}");
        let mut b = ExecBuilder::new(1);
        b.data_read(P0, x);
        let clean = check_drf(&b.finish().unwrap(), HbMode::Drf0);
        assert!(clean.to_string().contains("race-free"));
    }
}
