//! Figure 1, configuration 2: no caches, a general interconnection
//! network between processors and memory modules. Accesses are *issued
//! in program order* but can "reach memory modules in a different order"
//! (Lamport's original observation).

use weakord_core::{Loc, ProcId, Value};

use crate::checkpoint::{Codec, DecodeError, Reader};
use weakord_progs::{Access, Outcome, Program, ThreadEvent, ThreadState};

use crate::machine::{
    advance_skipping_delays_and_fences, outcome_if_halted, DeliveryClass, InternalStep, Label,
    Machine, OpRecord, ReductionClass, SyncGate,
};

/// In-order issue into an unordered network: writes travel as in-flight
/// messages that arrive at memory in any order, except that messages
/// from one processor to one location stay ordered (they follow the same
/// path to the same module). Reads consult the own in-flight writes to
/// the same location (the module serves them in path order) and
/// otherwise return the current memory value. No synchronization support
/// beyond RMW atomicity.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetReorderMachine;

/// State of [`NetReorderMachine`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NetState {
    /// Architectural thread states.
    pub threads: Vec<ThreadState>,
    /// The memory modules.
    pub mem: Vec<Value>,
    /// Per-processor in-flight writes in issue order; index order is the
    /// per-path FIFO constraint.
    pub in_flight: Vec<Vec<(Loc, Value)>>,
}

impl NetState {
    fn own_latest(&self, t: usize, loc: Loc) -> Option<Value> {
        self.in_flight[t].iter().rev().find(|(l, _)| *l == loc).map(|(_, v)| *v)
    }

    fn has_own(&self, t: usize, loc: Loc) -> bool {
        self.in_flight[t].iter().any(|(l, _)| *l == loc)
    }
}

impl Machine for NetReorderMachine {
    type State = NetState;

    fn name(&self) -> &'static str {
        "net-reorder"
    }

    fn initial(&self, prog: &Program) -> NetState {
        NetState {
            threads: weakord_progs::initial_threads(prog),
            mem: vec![Value::ZERO; prog.n_locs as usize],
            in_flight: vec![Vec::new(); prog.n_procs()],
        }
    }

    fn successors(&self, prog: &Program, state: &NetState, out: &mut Vec<(Label, NetState)>) {
        for t in 0..state.threads.len() {
            if state.threads[t].is_halted() {
                continue;
            }
            let thread = &prog.threads[t];
            let mut next = state.clone();
            let ThreadEvent::Access(access) =
                advance_skipping_delays_and_fences(&mut next.threads[t], thread)
            else {
                // The advance reached Halt: keep the halted thread state.
                out.push((Label::Internal(InternalStep::halt(ProcId::new(t as u16))), next));
                continue;
            };
            let proc = ProcId::new(t as u16);
            let kind = access.op_kind();
            let loc = access.loc();
            match access {
                Access::Read { .. } => {
                    let v = next.own_latest(t, loc).unwrap_or(next.mem[loc.index()]);
                    next.threads[t].complete(thread, Some(v));
                    let rec =
                        OpRecord { proc, kind, loc, read_value: Some(v), written_value: None };
                    out.push((Label::Op(rec), next));
                }
                Access::Write { value, .. } => {
                    next.in_flight[t].push((loc, value));
                    next.threads[t].complete(thread, None);
                    let rec =
                        OpRecord { proc, kind, loc, read_value: None, written_value: Some(value) };
                    out.push((Label::Op(rec), next));
                }
                Access::Rmw { op, .. } => {
                    // The module executes the RMW atomically; it must see
                    // our earlier writes to this location first.
                    if next.has_own(t, loc) {
                        continue;
                    }
                    let old = next.mem[loc.index()];
                    let new = op.apply(old);
                    next.mem[loc.index()] = new;
                    next.threads[t].complete(thread, Some(old));
                    let rec = OpRecord {
                        proc,
                        kind,
                        loc,
                        read_value: Some(old),
                        written_value: Some(new),
                    };
                    out.push((Label::Op(rec), next));
                }
            }
        }
        // Network deliveries: any in-flight write whose per-(proc, loc)
        // predecessors have been delivered.
        for t in 0..state.in_flight.len() {
            for i in 0..state.in_flight[t].len() {
                let (loc, v) = state.in_flight[t][i];
                if state.in_flight[t][..i].iter().any(|(l, _)| *l == loc) {
                    continue; // an older write to the same module blocks this one
                }
                let mut next = state.clone();
                next.in_flight[t].remove(i);
                next.mem[loc.index()] = v;
                out.push((Label::Internal(InternalStep::drain(ProcId::new(t as u16), loc)), next));
            }
        }
    }

    fn outcome(&self, _prog: &Program, state: &NetState) -> Option<Outcome> {
        if state.in_flight.iter().any(|q| !q.is_empty()) {
            return None;
        }
        outcome_if_halted(&state.threads, state.mem.clone())
    }

    fn threads<'a>(&self, state: &'a NetState) -> &'a [ThreadState] {
        &state.threads
    }

    fn reduction_class(&self) -> ReductionClass {
        // RMWs gate only on the issuer's own in-flight writes to the
        // RMW's location (same-processor); deliveries write the single
        // shared memory.
        ReductionClass { sync_gate: SyncGate::None, delivery: DeliveryClass::Memory }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Limits};
    use crate::machines::ScMachine;
    use weakord_progs::litmus;

    #[test]
    fn dekker_violation_is_possible() {
        let lit = litmus::fig1_dekker();
        let ex = explore(&NetReorderMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().any(|o| (lit.non_sc)(o)));
        assert_eq!(ex.deadlocks, 0);
    }

    #[test]
    fn mp_violation_is_possible() {
        // Unlike the FIFO write buffer, the network can deliver the flag
        // before the data.
        let lit = litmus::mp();
        let ex = explore(&NetReorderMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().any(|o| (lit.non_sc)(o)));
    }

    #[test]
    fn per_location_fifo_keeps_coherence() {
        let lit = litmus::coherence_corr();
        let ex = explore(&NetReorderMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().all(|o| !(lit.non_sc)(o)));
    }

    #[test]
    fn outcome_set_is_superset_of_sc() {
        for lit in litmus::all() {
            let sc = explore(&ScMachine, &lit.program, Limits::default());
            let net = explore(&NetReorderMachine, &lit.program, Limits::default());
            assert!(
                net.outcomes.is_superset(&sc.outcomes),
                "{}: net-reorder lost SC outcomes",
                lit.name
            );
        }
    }
}

impl Codec for NetState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.threads.encode(out);
        self.mem.encode(out);
        self.in_flight.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(NetState { threads: Vec::decode(r)?, mem: Vec::decode(r)?, in_flight: Vec::decode(r)? })
    }
}
