//! Total store ordering: the write-buffer hardware of Figure 1 plus an
//! architecture that *recognizes* ordering primitives. Data writes sit
//! in a per-processor FIFO buffer with store→load forwarding; fences,
//! synchronization accesses and atomic read-modify-writes drain the
//! issuer's buffer and execute directly against memory — the SPARC/x86
//! discipline ("Time, Fences and the Ordering of Events in TSO"). The
//! only relaxation left is a data read bypassing the issuer's earlier
//! buffered data writes (W→R).

use std::collections::VecDeque;

use weakord_core::{Loc, ProcId, Value};

use crate::checkpoint::{Codec, DecodeError, Reader};
use weakord_progs::{Access, Outcome, Program, ThreadEvent, ThreadState};

use crate::machine::{
    advance_skipping_delays, outcome_if_halted, pooled_clone, DeliveryClass, InternalStep, Label,
    Machine, OpRecord, ReductionClass, SyncGate,
};

/// The TSO machine. Unlike [`crate::machines::WriteBufferMachine`] —
/// which buffers *every* write and honors nothing but RMW atomicity —
/// this machine treats `Test`/`Set`/RMW and explicit fences as full
/// ordering points: each waits for the issuer's buffer to drain and
/// then performs against memory atomically. DRF0 programs therefore
/// appear sequentially consistent on it (Definition 2 holds), while
/// racy W→R shapes (Dekker/SB) still break.
#[derive(Debug, Clone, Copy, Default)]
pub struct TsoMachine;

/// State of [`TsoMachine`]: identical shape to the write-buffer
/// machine's — one global-FIFO store buffer per processor.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct TsoState {
    /// Architectural thread states.
    pub threads: Vec<ThreadState>,
    /// Memory behind the buffers.
    pub mem: Vec<Value>,
    /// Per-processor FIFO write buffers (data writes only; ordering
    /// operations never enter them).
    pub buffers: Vec<VecDeque<(Loc, Value)>>,
}

impl TsoState {
    fn forwarded(&self, t: usize, loc: Loc) -> Option<Value> {
        self.buffers[t].iter().rev().find(|(l, _)| *l == loc).map(|(_, v)| *v)
    }
}

/// Hand-written so `clone_from` reuses the buffer allocations (the
/// derived impl's `clone_from` falls back to a fresh clone), making
/// [`Machine::successors_into`]'s state recycling allocation-free.
impl Clone for TsoState {
    fn clone(&self) -> Self {
        TsoState {
            threads: self.threads.clone(),
            mem: self.mem.clone(),
            buffers: self.buffers.clone(),
        }
    }
    fn clone_from(&mut self, src: &Self) {
        self.threads.clone_from(&src.threads);
        self.mem.clone_from(&src.mem);
        self.buffers.clone_from(&src.buffers);
    }
}

impl Machine for TsoMachine {
    type State = TsoState;

    fn name(&self) -> &'static str {
        "tso"
    }

    fn initial(&self, prog: &Program) -> TsoState {
        TsoState {
            threads: weakord_progs::initial_threads(prog),
            mem: vec![Value::ZERO; prog.n_locs as usize],
            buffers: vec![VecDeque::new(); prog.n_procs()],
        }
    }

    fn successors(&self, prog: &Program, state: &TsoState, out: &mut Vec<(Label, TsoState)>) {
        self.succs(prog, state, out, &mut Vec::new());
    }

    fn successors_into(
        &self,
        prog: &Program,
        state: &TsoState,
        out: &mut Vec<(Label, TsoState)>,
        pool: &mut Vec<TsoState>,
    ) {
        self.succs(prog, state, out, pool);
    }

    fn outcome(&self, _prog: &Program, state: &TsoState) -> Option<Outcome> {
        if state.buffers.iter().any(|b| !b.is_empty()) {
            return None;
        }
        outcome_if_halted(&state.threads, state.mem.clone())
    }

    fn threads<'a>(&self, state: &'a TsoState) -> &'a [ThreadState] {
        &state.threads
    }

    fn reduction_class(&self) -> ReductionClass {
        // Fences, sync accesses and RMWs gate only on the issuer's
        // *own* buffer (a same-processor dependence); drains write the
        // single shared memory.
        ReductionClass { sync_gate: SyncGate::None, delivery: DeliveryClass::Memory }
    }
}

impl TsoMachine {
    /// The single successor body behind both trait entry points:
    /// scratch states come from `pool` and every path that abandons one
    /// puts it back.
    fn succs(
        &self,
        prog: &Program,
        state: &TsoState,
        out: &mut Vec<(Label, TsoState)>,
        pool: &mut Vec<TsoState>,
    ) {
        // Thread transitions.
        for t in 0..state.threads.len() {
            if state.threads[t].is_halted() {
                continue;
            }
            let thread = &prog.threads[t];
            let mut next = pooled_clone(pool, state);
            let access = match advance_skipping_delays(&mut next.threads[t], thread) {
                ThreadEvent::Access(access) => access,
                ThreadEvent::Fence => {
                    // MFENCE: waits for the issuer's buffer to drain.
                    if !next.buffers[t].is_empty() {
                        pool.push(next);
                        continue;
                    }
                    next.threads[t].complete(thread, None);
                    out.push((Label::Internal(InternalStep::fence(ProcId::new(t as u16))), next));
                    continue;
                }
                // The advance reached Halt: keep the halted thread state.
                _ => {
                    out.push((Label::Internal(InternalStep::halt(ProcId::new(t as u16))), next));
                    continue;
                }
            };
            // Every synchronization access is an ordering point: it
            // waits for the issuer's own buffer and bypasses it.
            if access.is_sync() && !next.buffers[t].is_empty() {
                pool.push(next);
                continue;
            }
            let proc = ProcId::new(t as u16);
            let kind = access.op_kind();
            let loc = access.loc();
            match access {
                Access::Read { sync, .. } => {
                    // Store→load forwarding for data reads; sync reads
                    // execute with an empty buffer, so memory is it.
                    let v = if sync {
                        next.mem[loc.index()]
                    } else {
                        next.forwarded(t, loc).unwrap_or(next.mem[loc.index()])
                    };
                    next.threads[t].complete(thread, Some(v));
                    let rec =
                        OpRecord { proc, kind, loc, read_value: Some(v), written_value: None };
                    out.push((Label::Op(rec), next));
                }
                Access::Write { value, sync, .. } => {
                    if sync {
                        next.mem[loc.index()] = value;
                    } else {
                        next.buffers[t].push_back((loc, value));
                    }
                    next.threads[t].complete(thread, None);
                    let rec =
                        OpRecord { proc, kind, loc, read_value: None, written_value: Some(value) };
                    out.push((Label::Op(rec), next));
                }
                Access::Rmw { op, .. } => {
                    // Buffer already drained (is_sync gate above): lock
                    // the bus and execute atomically.
                    let old = next.mem[loc.index()];
                    let new = op.apply(old);
                    next.mem[loc.index()] = new;
                    next.threads[t].complete(thread, Some(old));
                    let rec = OpRecord {
                        proc,
                        kind,
                        loc,
                        read_value: Some(old),
                        written_value: Some(new),
                    };
                    out.push((Label::Op(rec), next));
                }
            }
        }
        // Buffer drains.
        for t in 0..state.buffers.len() {
            if state.buffers[t].is_empty() {
                continue;
            }
            let mut next = pooled_clone(pool, state);
            let (loc, v) = next.buffers[t].pop_front().expect("non-empty");
            next.mem[loc.index()] = v;
            out.push((Label::Internal(InternalStep::drain(ProcId::new(t as u16), loc)), next));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Limits};
    use crate::machines::{ScMachine, WriteBufferMachine};
    use weakord_core::Loc;
    use weakord_progs::{litmus, Reg, ThreadBuilder};

    #[test]
    fn dekker_violation_is_possible() {
        let lit = litmus::fig1_dekker();
        let ex = explore(&TsoMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().any(|o| (lit.non_sc)(o)), "TSO must allow the SB relaxation");
        assert_eq!(ex.deadlocks, 0);
    }

    #[test]
    fn fenced_dekker_is_sequentially_consistent() {
        // W x; MFENCE; R y on both sides: the W→R relaxation is gone.
        let mk = |w: u32, r: u32| {
            let mut t = ThreadBuilder::new();
            t.write(Loc::new(w), 1u64);
            t.fence();
            t.read(Reg::new(0), Loc::new(r));
            t.halt();
            t.finish()
        };
        let prog = Program::new("sb+fences", vec![mk(0, 1), mk(1, 0)], 2).unwrap();
        let ex = explore(&TsoMachine, &prog, Limits::default());
        assert_eq!(ex.deadlocks, 0);
        let sc = explore(&ScMachine, &prog, Limits::default());
        assert_eq!(ex.outcomes, sc.outcomes, "fences must restore SC on SB");
    }

    #[test]
    fn sync_dekker_is_sequentially_consistent() {
        // Where the sync-oblivious write buffer breaks dekker-sync, TSO
        // honors Set/Test as ordering points.
        let lit = litmus::dekker_sync();
        let tso = explore(&TsoMachine, &lit.program, Limits::default());
        assert!(tso.outcomes.iter().all(|o| !(lit.non_sc)(o)));
        let wb = explore(&WriteBufferMachine, &lit.program, Limits::default());
        assert!(wb.outcomes.iter().any(|o| (lit.non_sc)(o)), "wb is the sync-oblivious contrast");
    }

    #[test]
    fn mp_is_forbidden_by_fifo_buffers() {
        let lit = litmus::mp();
        let ex = explore(&TsoMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().all(|o| !(lit.non_sc)(o)), "TSO keeps W→W order");
    }

    #[test]
    fn store_forwarding_sees_own_buffered_write() {
        let mut t = ThreadBuilder::new();
        t.write(Loc::new(0), 9u64);
        t.read(Reg::new(0), Loc::new(0));
        t.halt();
        let prog = Program::new("fwd", vec![t.finish()], 1).unwrap();
        let ex = explore(&TsoMachine, &prog, Limits::default());
        for o in &ex.outcomes {
            assert_eq!(o.reg(0, Reg::new(0)), Value::new(9));
        }
    }

    #[test]
    fn rmw_drains_the_buffer_before_executing() {
        // T0 buffers x=1 then swaps s: by the time the swap completes,
        // x=1 is in memory, so T1's `swap s` → read x never sees x=0
        // after losing the race.
        let mut t0 = ThreadBuilder::new();
        t0.write(Loc::new(0), 1u64);
        t0.swap(Reg::new(0), Loc::new(1), Value::new(1));
        t0.halt();
        let mut t1 = ThreadBuilder::new();
        t1.swap(Reg::new(0), Loc::new(1), Value::new(2));
        t1.read(Reg::new(1), Loc::new(0));
        t1.halt();
        let prog = Program::new("rmw-drain", vec![t0.finish(), t1.finish()], 2).unwrap();
        let ex = explore(&TsoMachine, &prog, Limits::default());
        for o in &ex.outcomes {
            // T1's swap read T0's (reg0 = 1): T0's swap already ran, so
            // its earlier buffered x=1 must be visible.
            if o.reg(1, Reg::new(0)) == Value::new(1) {
                assert_eq!(o.reg(1, Reg::new(1)), Value::new(1), "RMW failed to drain: {o}");
            }
        }
    }

    #[test]
    fn outcome_set_is_superset_of_sc() {
        for lit in litmus::all() {
            let sc = explore(&ScMachine, &lit.program, Limits::default());
            let tso = explore(&TsoMachine, &lit.program, Limits::default());
            assert!(tso.outcomes.is_superset(&sc.outcomes), "{}: TSO lost SC outcomes", lit.name);
        }
    }
}

impl Codec for TsoState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.threads.encode(out);
        self.mem.encode(out);
        self.buffers.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TsoState { threads: Vec::decode(r)?, mem: Vec::decode(r)?, buffers: Vec::decode(r)? })
    }
}
