//! E7 / ablations: strict vs parallel data forwarding, miss caps, and
//! interconnect models on the Figure 3 scenario.

#[cfg(feature = "bench")]
use criterion::{criterion_group, criterion_main, Criterion};
#[cfg(feature = "bench")]
use std::hint::black_box;
#[cfg(feature = "bench")]
use weakord_bench::experiments;
#[cfg(feature = "bench")]
use weakord_coherence::{CoherentMachine, Config, NetModel, Policy, SyncPolicy};
#[cfg(feature = "bench")]
use weakord_progs::workloads::{fig3_scenario, Fig3Params};

#[cfg(feature = "bench")]
fn bench(c: &mut Criterion) {
    println!("{}", experiments::e7_ablations().render());
    let prog = fig3_scenario(Fig3Params {
        work_before_release: 20,
        work_after_release: 300,
        extra_writes: 8,
        consumer_work: 20,
    });
    let mut group = c.benchmark_group("e7_ablate");
    for (name, strict) in [("parallel", false), ("strict", true)] {
        group.bench_function(format!("forwarding/{name}"), |b| {
            b.iter(|| {
                let cfg = Config {
                    policy: Policy::def2(),
                    seed: 7,
                    strict_data: strict,
                    ..Config::default()
                };
                CoherentMachine::new(black_box(&prog), cfg).run().expect("runs").cycles
            })
        });
    }
    for (name, cap) in [("uncapped", None), ("cap1", Some(1))] {
        group.bench_function(format!("miss-cap/{name}"), |b| {
            b.iter(|| {
                let cfg = Config {
                    policy: Policy::Def2 {
                        drf1_refined: false,
                        miss_cap: cap,
                        sync: SyncPolicy::Queue,
                    },
                    seed: 7,
                    ..Config::default()
                };
                CoherentMachine::new(black_box(&prog), cfg).run().expect("runs").cycles
            })
        });
    }
    for (name, network) in [
        ("bus", NetModel::Bus { cycles: 4 }),
        ("crossbar", NetModel::Crossbar { cycles: 12 }),
        ("general", NetModel::General { min: 20, max: 60 }),
    ] {
        group.bench_function(format!("network/{name}"), |b| {
            b.iter(|| {
                let cfg = Config { policy: Policy::def2(), network, seed: 7, ..Config::default() };
                CoherentMachine::new(black_box(&prog), cfg).run().expect("runs").cycles
            })
        });
    }
    group.finish();
}

#[cfg(feature = "bench")]
fn config() -> Criterion {
    // Keep full-workspace bench runs quick: the quantities of interest
    // (cycle counts, message counts) are deterministic; wall-clock
    // timing is secondary.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

#[cfg(feature = "bench")]
criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
#[cfg(feature = "bench")]
criterion_main!(benches);

/// Stub entry point for hermetic builds: the real harness needs the
/// `bench` feature (and the criterion dev-dependency it documents).
#[cfg(not(feature = "bench"))]
fn main() {
    eprintln!(
        "bench `e7_ablate` is a no-op without `--features bench`; see crates/bench/Cargo.toml"
    );
}
