//! The shipped `litmus/*.litmus` sample files stay parseable, valid,
//! and well-behaved: every file round-trips through the text format and
//! explores cleanly on the reference machine.

use std::fs;

use weakord::mc::machines::ScMachine;
use weakord::mc::{explore, Limits};
use weakord::progs::{parse_program, unparse_program};

#[test]
fn shipped_litmus_files_parse_and_explore() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut found = 0;
    for entry in fs::read_dir(dir).expect("litmus/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("litmus") {
            continue;
        }
        found += 1;
        let src = fs::read_to_string(&path).expect("readable");
        let prog = parse_program(&src)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        prog.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Round-trip stability.
        let back = parse_program(&unparse_program(&prog)).expect("round trip");
        assert_eq!(back.threads, prog.threads, "{}", path.display());
        // Explores without deadlock or truncation.
        let ex = explore(&ScMachine, &prog, Limits::default());
        assert!(!ex.truncated, "{}", path.display());
        assert_eq!(ex.deadlocks, 0, "{}", path.display());
        assert!(!ex.outcomes.is_empty(), "{}", path.display());
    }
    assert!(found >= 4, "expected the shipped sample files, found {found}");
}

#[test]
fn counter_litmus_always_counts_to_two_under_sc() {
    use weakord::core::Value;
    let src = fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/litmus/counter.litmus"))
        .expect("readable");
    let prog = parse_program(&src).expect("parses");
    let ex = explore(&ScMachine, &prog, Limits::default());
    for o in &ex.outcomes {
        assert_eq!(o.memory[1], Value::new(2), "lost update under SC?! {o}");
    }
}
