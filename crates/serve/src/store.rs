//! The storage plane: one `Vfs` trait behind which every durable
//! byte of daemon state — journals, results, checkpoints, flight
//! dumps, the addr file — is written, read, and deleted.
//!
//! This is PR 3's interconnect lesson applied to the filesystem. The
//! durable-state contract ("results are byte-identical across kills
//! and restarts") is only as strong as the storage assumptions under
//! it, and before this module those assumptions were implicit: writes
//! never tear, renames never fail, disks never fill. [`RealVfs`]
//! makes the real-disk discipline explicit and audited — temp file,
//! `sync_all` *before* the publishing rename, parent-directory fsync
//! *after* it — while [`FaultVfs`] is a seeded, per-path-class fault
//! plan (torn write at byte k, failed rename that strands the temp,
//! ENOSPC, transient EIO, and a crash mode that loses unsynced data)
//! in the spirit of `weakord-sim`'s `FaultPlan`. An all-faults-off
//! `FaultVfs` is inert: byte-identical behavior to `RealVfs`.
//!
//! The same seam reaches down into the engines: [`VfsCkptStore`]
//! adapts a `Vfs` to `weakord-mc`'s `CkptStore`, adding the daemon's
//! degradation policy — ENOSPC on a checkpoint write flips the run to
//! RAM-only checkpointing (gauge raised, run keeps going) instead of
//! failing it, and transient EIO gets a bounded retry with backoff.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use weakord_mc::{CkptStore, DiskStore};
use weakord_obs::MetricsRegistry;

// ---------------------------------------------------------------------
// Path classes.
// ---------------------------------------------------------------------

/// Which durable artifact a path belongs to, derived from the state
/// directory layout (`jobs/`, `results/`, `ckpt/`, `flight/`,
/// `quarantine/`; everything else is `Meta`, e.g. the `addr` file).
/// Fault plans target classes, not paths: "tear journal writes" is a
/// statement about a *kind* of artifact, robust to renames of
/// individual files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathClass {
    /// Accepted-job journal lines under `jobs/`.
    Journal,
    /// Finished result lines under `results/`.
    Result,
    /// Engine checkpoints under `ckpt/`.
    Checkpoint,
    /// Flight-recorder dumps under `flight/`.
    Flight,
    /// Quarantined corrupt artifacts under `quarantine/`.
    Quarantine,
    /// Everything else (the `addr` file, the state dir root).
    Meta,
}

impl PathClass {
    /// Classify `path` by the nearest ancestor directory name that
    /// matches a known state-dir component.
    pub fn of(path: &Path) -> PathClass {
        for anc in path.ancestors().skip(1) {
            match anc.file_name().and_then(|n| n.to_str()) {
                Some("jobs") => return PathClass::Journal,
                Some("results") => return PathClass::Result,
                Some("ckpt") => return PathClass::Checkpoint,
                Some("flight") => return PathClass::Flight,
                Some("quarantine") => return PathClass::Quarantine,
                _ => {}
            }
        }
        PathClass::Meta
    }

    /// Stable lowercase name, used in fault-class flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            PathClass::Journal => "journal",
            PathClass::Result => "result",
            PathClass::Checkpoint => "ckpt",
            PathClass::Flight => "flight",
            PathClass::Quarantine => "quarantine",
            PathClass::Meta => "meta",
        }
    }

    /// This class's bit in a [`StoreFaultPlan::class_mask`].
    pub fn bit(self) -> u8 {
        match self {
            PathClass::Journal => CLASS_JOURNAL,
            PathClass::Result => CLASS_RESULT,
            PathClass::Checkpoint => CLASS_CKPT,
            PathClass::Flight => CLASS_FLIGHT,
            PathClass::Quarantine => 1 << 4,
            PathClass::Meta => 1 << 5,
        }
    }
}

/// Fault-class bit: journal writes.
pub const CLASS_JOURNAL: u8 = 1 << 0;
/// Fault-class bit: result writes.
pub const CLASS_RESULT: u8 = 1 << 1;
/// Fault-class bit: checkpoint writes.
pub const CLASS_CKPT: u8 = 1 << 2;
/// Fault-class bit: flight-recorder dumps.
pub const CLASS_FLIGHT: u8 = 1 << 3;
/// Fault-class bit set covering every durable artifact class.
pub const CLASS_ALL: u8 = 0xff;

/// Parse a comma-separated class list (`journal,result,ckpt,flight`
/// or `all`) into a [`StoreFaultPlan::class_mask`].
pub fn parse_class_mask(s: &str) -> Result<u8, String> {
    let mut mask = 0u8;
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        mask |= match part {
            "all" => CLASS_ALL,
            "journal" | "jobs" => CLASS_JOURNAL,
            "result" | "results" => CLASS_RESULT,
            "ckpt" | "checkpoint" => CLASS_CKPT,
            "flight" => CLASS_FLIGHT,
            other => return Err(format!("unknown storage class `{other}`")),
        };
    }
    if mask == 0 {
        return Err("empty storage class list".into());
    }
    Ok(mask)
}

// ---------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------

/// Lock-free storage-plane telemetry, owned by a [`Vfs`] and merged
/// into the daemon's metrics registry on every `status`/`metrics`
/// reply. Counters are cumulative since daemon start; the two booleans
/// export as 0/1 gauges.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Durable atomic writes attempted.
    pub writes: AtomicU64,
    /// Transient-error retries performed by [`write_with_retry`].
    pub write_retries: AtomicU64,
    /// Cleanup deletions (`remove_file`/`remove_dir_all`) that failed.
    /// Before this counter those errors were silently discarded with
    /// `let _ =`; now every leaked file is at least visible.
    pub cleanup_errors: AtomicU64,
    /// Checkpoint writes skipped because the disk was full (the run
    /// degraded to RAM-only checkpointing instead of failing).
    pub ckpt_skipped_no_space: AtomicU64,
    /// Injected torn writes ([`FaultVfs`] only).
    pub faults_torn: AtomicU64,
    /// Injected rename failures ([`FaultVfs`] only).
    pub faults_rename: AtomicU64,
    /// Injected ENOSPC failures ([`FaultVfs`] only).
    pub faults_enospc: AtomicU64,
    /// Injected transient EIO failures ([`FaultVfs`] only).
    pub faults_eio: AtomicU64,
    /// Operations refused because the simulated disk already crashed
    /// ([`FaultVfs`] only).
    pub faults_post_crash: AtomicU64,
    /// True while the most recent accept-path write hit ENOSPC.
    pub disk_full: AtomicBool,
    /// True while at least the latest checkpoint write was skipped
    /// for lack of space (RAM-only checkpointing in effect).
    pub ckpt_ram_only: AtomicBool,
}

impl StoreStats {
    /// Record a failed cleanup deletion.
    pub fn note_cleanup_error(&self) {
        self.cleanup_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge every counter and gauge into `reg` under `storage.*`.
    pub fn export_into(&self, reg: &mut MetricsRegistry) {
        let c = |reg: &mut MetricsRegistry, key: &str, v: &AtomicU64| {
            reg.counter(key, v.load(Ordering::Relaxed));
        };
        c(reg, "storage.writes", &self.writes);
        c(reg, "storage.write_retries", &self.write_retries);
        c(reg, "storage.cleanup_errors", &self.cleanup_errors);
        c(reg, "storage.ckpt_skipped_no_space", &self.ckpt_skipped_no_space);
        c(reg, "storage.fault.torn", &self.faults_torn);
        c(reg, "storage.fault.rename", &self.faults_rename);
        c(reg, "storage.fault.enospc", &self.faults_enospc);
        c(reg, "storage.fault.eio", &self.faults_eio);
        c(reg, "storage.fault.post_crash", &self.faults_post_crash);
        reg.gauge(
            "storage.disk_full",
            if self.disk_full.load(Ordering::Relaxed) { 1.0 } else { 0.0 },
        );
        reg.gauge(
            "storage.ckpt_ram_only",
            if self.ckpt_ram_only.load(Ordering::Relaxed) { 1.0 } else { 0.0 },
        );
    }
}

// ---------------------------------------------------------------------
// The trait.
// ---------------------------------------------------------------------

/// Every durable-state IO operation the daemon performs. One
/// implementation is the audited real disk; the other is a seeded
/// faulty disk. Nothing above this trait may call `std::fs` for
/// state-dir paths.
pub trait Vfs: Send + Sync {
    /// Atomically publish `bytes` at `path`: after `Ok(())` a crash at
    /// any later instant surfaces either these bytes or a previously
    /// published version, never a torn mix. Creates parent dirs.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// Read the entire file.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Read the entire file as UTF-8.
    fn read_to_string(&self, path: &Path) -> std::io::Result<String> {
        let bytes = self.read(path)?;
        String::from_utf8(bytes)
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "not UTF-8"))
    }
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;
    /// Delete a directory tree.
    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()>;
    /// Create a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()>;
    /// Rename `from` to `to` (same filesystem; used by quarantine).
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Directory entries of `dir`, sorted by file name for
    /// deterministic iteration order. Missing dir reads as empty.
    fn read_dir_sorted(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>>;
    /// Does `path` exist?
    fn exists(&self, path: &Path) -> bool;
    /// This store's telemetry.
    fn stats(&self) -> &StoreStats;
}

/// Best-effort cleanup: delete `path`, counting (not swallowing) a
/// failure in `storage.cleanup_errors`. "Already gone" is success.
pub(crate) fn cleanup_file(vfs: &dyn Vfs, path: &Path) {
    match vfs.remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(_) => vfs.stats().note_cleanup_error(),
    }
}

/// [`cleanup_file`] for directory trees.
pub(crate) fn cleanup_dir(vfs: &dyn Vfs, path: &Path) {
    match vfs.remove_dir_all(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(_) => vfs.stats().note_cleanup_error(),
    }
}

/// Is this error "the disk is full"? ENOSPC (and EDQUOT via
/// `StorageFull` on newer kernels/toolchains).
pub fn is_disk_full(e: &std::io::Error) -> bool {
    e.kind() == std::io::ErrorKind::StorageFull || e.raw_os_error() == Some(28)
}

/// Is this error worth an immediate bounded retry? Transient IO
/// (EIO), interruptions, and timeouts; *not* ENOSPC (space does not
/// come back in milliseconds) and not logical errors.
pub fn is_transient(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::Interrupted | std::io::ErrorKind::TimedOut)
        || e.raw_os_error() == Some(5)
}

/// Attempts beyond the first that [`write_with_retry`] makes for a
/// transient error.
pub const WRITE_RETRY_MAX: u32 = 3;

/// Durable write with bounded retry-with-backoff for transient
/// errors: up to [`WRITE_RETRY_MAX`] extra attempts, 1/2/4 ms apart.
/// ENOSPC and non-transient errors return immediately.
pub fn write_with_retry(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut attempt = 0u32;
    loop {
        match vfs.write_atomic(path, bytes) {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(&e) && attempt < WRITE_RETRY_MAX => {
                attempt += 1;
                vfs.stats().write_retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(1 << (attempt - 1).min(4)));
            }
            Err(e) => return Err(e),
        }
    }
}

// ---------------------------------------------------------------------
// RealVfs.
// ---------------------------------------------------------------------

/// The real filesystem with the audited fsync discipline (shared with
/// `weakord-mc`'s `DiskStore`): temp file, `sync_all` before the
/// publishing rename, parent-directory fsync after it.
#[derive(Debug, Default)]
pub struct RealVfs {
    stats: StoreStats,
}

impl RealVfs {
    /// A fresh real-disk store.
    pub fn new() -> Self {
        RealVfs::default()
    }
}

impl Vfs for RealVfs {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        DiskStore.write_atomic(path, bytes)
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_dir_all(path)
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)?;
        if let Some(parent) = to.parent() {
            DiskStore::sync_parent_dir(parent)?;
        }
        Ok(())
    }

    fn read_dir_sorted(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let rd = match std::fs::read_dir(dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut out: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------
// FaultVfs.
// ---------------------------------------------------------------------

/// A seeded storage fault plan, the disk-shaped sibling of
/// `weakord-sim`'s interconnect `FaultPlan`. Rates are permille
/// (0–1000) per durable write; `class_mask` restricts which artifact
/// classes the rates apply to. A plan with every rate zero and no
/// crash point is *inert*: [`FaultVfs`] under it behaves
/// byte-identically to [`RealVfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFaultPlan {
    /// RNG seed for fault draws and torn-write offsets.
    pub seed: u64,
    /// Permille of writes published torn: a seeded strict prefix of
    /// the bytes lands at the *final* path (simulating lost unsynced
    /// data) and the write reports EIO.
    pub torn_permille: u32,
    /// Permille of writes whose publishing rename fails: the temp
    /// file is written in full and stranded, the final path is
    /// untouched, and the write reports EIO.
    pub rename_permille: u32,
    /// Permille of writes that fail with ENOSPC before any byte lands.
    pub enospc_permille: u32,
    /// Permille of writes that fail with a *transient* EIO: at most
    /// [`StoreFaultPlan::EIO_MAX_CONSECUTIVE`] consecutive failures,
    /// then the next attempt succeeds — so a bounded retry always
    /// clears it.
    pub eio_permille: u32,
    /// Which [`PathClass`]es the rates above apply to (`CLASS_*` bits).
    pub class_mask: u8,
    /// Crash-point mode: the `n`-th durable write (0-based, counted
    /// across *all* classes) loses its unsynced data — a seeded strict
    /// prefix lands at the final path — and every later operation
    /// fails as if the disk were gone, until the daemon is restarted
    /// on a fresh [`Vfs`]. This is how the crash-point matrix
    /// enumerates the journal→run→checkpoint→result lifecycle.
    pub crash_after_writes: Option<u64>,
}

impl StoreFaultPlan {
    /// Most consecutive injected transient-EIO failures per store.
    pub const EIO_MAX_CONSECUTIVE: u32 = 2;

    /// The inert plan: no faults, no crash point.
    pub fn none() -> Self {
        StoreFaultPlan {
            seed: 0,
            torn_permille: 0,
            rename_permille: 0,
            enospc_permille: 0,
            eio_permille: 0,
            class_mask: CLASS_ALL,
            crash_after_writes: None,
        }
    }

    /// A seeded rate plan over the given classes.
    pub fn with_rates(seed: u64, torn: u32, rename: u32, enospc: u32, eio: u32, mask: u8) -> Self {
        StoreFaultPlan {
            seed,
            torn_permille: torn,
            rename_permille: rename,
            enospc_permille: enospc,
            eio_permille: eio,
            class_mask: mask,
            crash_after_writes: None,
        }
    }

    /// A plan whose only fault is the deterministic crash at write
    /// `n` (see [`StoreFaultPlan::crash_after_writes`]).
    pub fn crash_at(n: u64) -> Self {
        StoreFaultPlan {
            crash_after_writes: Some(n),
            seed: n ^ 0x9e37_79b9_7f4a_7c15,
            ..StoreFaultPlan::none()
        }
    }

    /// Does this plan inject anything at all?
    pub fn is_active(&self) -> bool {
        self.torn_permille > 0
            || self.rename_permille > 0
            || self.enospc_permille > 0
            || self.eio_permille > 0
            || self.crash_after_writes.is_some()
    }
}

/// SplitMix64 — the same tiny in-tree generator the sim crate uses;
/// good enough for fault draws and torn offsets, zero dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`Vfs`] that injects the faults of a [`StoreFaultPlan`] in front
/// of a real [`RealVfs`]. With the inert plan it is a transparent
/// pass-through. Tests keep an `Arc<FaultVfs>` handle to flip faults
/// off mid-run ([`FaultVfs::disable`]) — "space came back".
pub struct FaultVfs {
    inner: RealVfs,
    plan: StoreFaultPlan,
    rng: Mutex<u64>,
    stats: StoreStats,
    /// Durable writes seen so far (the crash-point op counter).
    write_ops: AtomicU64,
    /// Set once the simulated disk has crashed; every later op fails.
    crashed: AtomicBool,
    /// Cleared by [`FaultVfs::disable`] to stop injecting.
    active: AtomicBool,
    /// Consecutive injected EIOs, reset on each success.
    eio_streak: AtomicU64,
}

impl FaultVfs {
    /// A faulty store driving `plan` over the real filesystem.
    pub fn new(plan: StoreFaultPlan) -> Self {
        FaultVfs {
            inner: RealVfs::new(),
            plan,
            rng: Mutex::new(plan.seed ^ 0x5851_f42d_4c95_7f2d),
            stats: StoreStats::default(),
            write_ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            active: AtomicBool::new(true),
            eio_streak: AtomicU64::new(0),
        }
    }

    /// Total durable writes attempted so far — the crash-point matrix
    /// measures a clean run with this, then replays crashes at each
    /// op index.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Ordering::Relaxed)
    }

    /// Has the simulated disk crashed?
    pub fn has_crashed(&self) -> bool {
        self.crashed.load(Ordering::Relaxed)
    }

    /// Stop injecting faults from now on (e.g. "space came back").
    /// A crashed disk stays crashed — restart on a fresh store.
    pub fn disable(&self) {
        self.active.store(false, Ordering::SeqCst);
    }

    fn injecting(&self) -> bool {
        self.active.load(Ordering::SeqCst) && self.plan.is_active()
    }

    fn class_applies(&self, path: &Path) -> bool {
        self.plan.class_mask & PathClass::of(path).bit() != 0
    }

    fn draw_permille(&self, rate: u32) -> bool {
        if rate == 0 {
            return false;
        }
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        (splitmix64(&mut rng) % 1000) < u64::from(rate)
    }

    /// A seeded strict-prefix length for a torn write of `len` bytes.
    fn torn_len(&self, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        (splitmix64(&mut rng) as usize) % len
    }

    fn crash_error(&self) -> std::io::Error {
        self.stats.faults_post_crash.fetch_add(1, Ordering::Relaxed);
        std::io::Error::from_raw_os_error(5)
    }

    /// Tear `bytes` onto the final path: a seeded strict prefix,
    /// written directly (the unsynced tail is lost).
    fn tear_onto(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let keep = self.torn_len(bytes.len());
        let mut f = std::fs::File::create(path)?;
        f.write_all(&bytes[..keep])?;
        Ok(())
    }
}

impl Vfs for FaultVfs {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let op = self.write_ops.fetch_add(1, Ordering::SeqCst);
        if !self.injecting() {
            return DiskStore.write_atomic(path, bytes);
        }
        if self.crashed.load(Ordering::SeqCst) {
            return Err(self.crash_error());
        }
        if let Some(n) = self.plan.crash_after_writes {
            if op == n {
                // The crash point: this write's synced prefix
                // survives, its unsynced tail and everything after
                // are gone.
                self.crashed.store(true, Ordering::SeqCst);
                self.stats.faults_torn.fetch_add(1, Ordering::Relaxed);
                let _ = self.tear_onto(path, bytes);
                return Err(std::io::Error::from_raw_os_error(5));
            }
        }
        if self.class_applies(path) {
            if self.draw_permille(self.plan.enospc_permille) {
                self.stats.faults_enospc.fetch_add(1, Ordering::Relaxed);
                return Err(std::io::Error::from_raw_os_error(28));
            }
            if self.draw_permille(self.plan.eio_permille) {
                let streak = self.eio_streak.fetch_add(1, Ordering::SeqCst);
                if streak < u64::from(StoreFaultPlan::EIO_MAX_CONSECUTIVE) {
                    self.stats.faults_eio.fetch_add(1, Ordering::Relaxed);
                    return Err(std::io::Error::from_raw_os_error(5));
                }
                self.eio_streak.store(0, Ordering::SeqCst);
            }
            if self.draw_permille(self.plan.torn_permille) {
                self.stats.faults_torn.fetch_add(1, Ordering::Relaxed);
                self.tear_onto(path, bytes)?;
                return Err(std::io::Error::from_raw_os_error(5));
            }
            if self.draw_permille(self.plan.rename_permille) {
                // The temp file lands in full; the publishing rename
                // fails, stranding it for scrub to find.
                self.stats.faults_rename.fetch_add(1, Ordering::Relaxed);
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)?;
                }
                std::fs::write(path.with_extension("tmp"), bytes)?;
                return Err(std::io::Error::from_raw_os_error(5));
            }
        }
        self.eio_streak.store(0, Ordering::SeqCst);
        DiskStore.write_atomic(path, bytes)
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        if self.crashed.load(Ordering::SeqCst) && self.injecting() {
            return Err(self.crash_error());
        }
        self.inner.read(path)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        if self.crashed.load(Ordering::SeqCst) && self.injecting() {
            return Err(self.crash_error());
        }
        self.inner.remove_file(path)
    }

    fn remove_dir_all(&self, path: &Path) -> std::io::Result<()> {
        if self.crashed.load(Ordering::SeqCst) && self.injecting() {
            return Err(self.crash_error());
        }
        self.inner.remove_dir_all(path)
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        if self.crashed.load(Ordering::SeqCst) && self.injecting() {
            return Err(self.crash_error());
        }
        self.inner.create_dir_all(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        if self.crashed.load(Ordering::SeqCst) && self.injecting() {
            return Err(self.crash_error());
        }
        self.inner.rename(from, to)
    }

    fn read_dir_sorted(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        self.inner.read_dir_sorted(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn stats(&self) -> &StoreStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------
// The checkpoint adapter.
// ---------------------------------------------------------------------

/// Adapts a [`Vfs`] to `weakord-mc`'s [`CkptStore`], adding the
/// daemon's degradation policy: transient EIO gets the bounded retry,
/// and ENOSPC on a checkpoint write is *absorbed* — the write is
/// skipped, `storage.ckpt_ram_only` is raised, and the run keeps
/// going on in-memory state. Correctness is preserved because resume
/// from *any* earlier checkpoint is equivalence-preserving (PR 8's
/// resume contract); only resumability freshness degrades. A later
/// successful checkpoint write clears the gauge.
pub struct VfsCkptStore {
    vfs: Arc<dyn Vfs>,
}

impl VfsCkptStore {
    /// Wrap `vfs` for engine checkpoint IO.
    pub fn new(vfs: Arc<dyn Vfs>) -> Self {
        VfsCkptStore { vfs }
    }
}

impl CkptStore for VfsCkptStore {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        match write_with_retry(&*self.vfs, path, bytes) {
            Ok(()) => {
                self.vfs.stats().ckpt_ram_only.store(false, Ordering::Relaxed);
                Ok(())
            }
            Err(e) if is_disk_full(&e) => {
                self.vfs.stats().ckpt_skipped_no_space.fetch_add(1, Ordering::Relaxed);
                self.vfs.stats().ckpt_ram_only.store(true, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.vfs.read(path)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        let r = self.vfs.remove_file(path);
        if let Err(e) = &r {
            if e.kind() != std::io::ErrorKind::NotFound {
                self.vfs.stats().note_cleanup_error();
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("weakord-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn path_classes_follow_the_state_dir_layout() {
        let d = Path::new("/s");
        assert_eq!(PathClass::of(&d.join("jobs/x.json")), PathClass::Journal);
        assert_eq!(PathClass::of(&d.join("results/x.json")), PathClass::Result);
        assert_eq!(PathClass::of(&d.join("ckpt/x/weakord.ckpt")), PathClass::Checkpoint);
        assert_eq!(PathClass::of(&d.join("flight/x.jsonl")), PathClass::Flight);
        assert_eq!(PathClass::of(&d.join("quarantine/x.0")), PathClass::Quarantine);
        assert_eq!(PathClass::of(&d.join("addr")), PathClass::Meta);
    }

    #[test]
    fn class_mask_parses_names_and_all() {
        assert_eq!(parse_class_mask("all").unwrap(), CLASS_ALL);
        assert_eq!(parse_class_mask("journal,result").unwrap(), CLASS_JOURNAL | CLASS_RESULT);
        assert_eq!(parse_class_mask("ckpt").unwrap(), CLASS_CKPT);
        assert!(parse_class_mask("disk").is_err());
        assert!(parse_class_mask("").is_err());
    }

    #[test]
    fn inert_fault_vfs_round_trips_bytes_exactly() {
        let d = tmp("inert");
        let vfs = FaultVfs::new(StoreFaultPlan::none());
        let p = d.join("jobs/a.json");
        vfs.write_atomic(&p, b"{\"id\":\"a\"}\n").unwrap();
        assert_eq!(vfs.read(&p).unwrap(), b"{\"id\":\"a\"}\n");
        assert_eq!(vfs.stats().faults_torn.load(Ordering::Relaxed), 0);
        assert!(!vfs.has_crashed());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn crash_point_tears_the_nth_write_and_kills_the_rest() {
        let d = tmp("crash");
        let vfs = FaultVfs::new(StoreFaultPlan::crash_at(1));
        let a = d.join("jobs/a.json");
        let b = d.join("jobs/b.json");
        vfs.write_atomic(&a, b"aaaa-aaaa").unwrap();
        let err = vfs.write_atomic(&b, b"bbbb-bbbb").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        assert!(vfs.has_crashed());
        // The torn survivor is a strict prefix.
        let torn = std::fs::read(&b).unwrap();
        assert!(torn.len() < 9, "torn write kept {} bytes", torn.len());
        assert!(b"bbbb-bbbb".starts_with(&torn[..]));
        // Everything after the crash fails.
        assert!(vfs.write_atomic(&a, b"x").is_err());
        assert!(vfs.read(&a).is_err());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn enospc_is_classified_and_not_retried() {
        let full = std::io::Error::from_raw_os_error(28);
        assert!(is_disk_full(&full));
        assert!(!is_transient(&full));
        let eio = std::io::Error::from_raw_os_error(5);
        assert!(is_transient(&eio));
        assert!(!is_disk_full(&eio));
    }

    #[test]
    fn transient_eio_is_cleared_by_bounded_retry() {
        let d = tmp("eio");
        let vfs = FaultVfs::new(StoreFaultPlan::with_rates(7, 0, 0, 0, 1000, CLASS_ALL));
        let p = d.join("results/r.json");
        write_with_retry(&vfs, &p, b"ok\n").unwrap();
        assert_eq!(vfs.read(&p).unwrap(), b"ok\n");
        assert!(vfs.stats().faults_eio.load(Ordering::Relaxed) >= 1);
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn rename_fault_strands_the_temp_file() {
        let d = tmp("rename");
        let vfs = FaultVfs::new(StoreFaultPlan::with_rates(3, 0, 1000, 0, 0, CLASS_JOURNAL));
        let p = d.join("jobs/j.json");
        assert!(vfs.write_atomic(&p, b"spec\n").is_err());
        assert!(!p.exists());
        assert!(p.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn ckpt_adapter_absorbs_enospc_and_raises_the_gauge() {
        let d = tmp("ckpt-enospc");
        let vfs: Arc<dyn Vfs> =
            Arc::new(FaultVfs::new(StoreFaultPlan::with_rates(9, 0, 0, 1000, 0, CLASS_CKPT)));
        let store = VfsCkptStore::new(Arc::clone(&vfs));
        let p = d.join("ckpt/j/weakord.ckpt");
        store.write_atomic(&p, b"WOCKPT-ish").unwrap(); // absorbed, not an error
        assert!(!vfs.exists(&p));
        assert!(vfs.stats().ckpt_ram_only.load(Ordering::Relaxed));
        assert_eq!(vfs.stats().ckpt_skipped_no_space.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&d);
    }
}
