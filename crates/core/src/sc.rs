//! Sequential consistency: results, legality, and the Lemma 1
//! appears-SC check.
//!
//! The paper fixes Lamport's definition by interpreting *result* as "the
//! union of the values returned by all the read operations in the
//! execution and the final state of memory". [`ExecResult`] is that
//! canonical observable; a machine *appears sequentially consistent* for
//! a program iff every result it can produce is also producible by an
//! interleaving machine (enumerated by `weakord-mc`).
//!
//! Lemma 1 (Appendix A) gives a per-execution criterion for DRF0
//! programs: an execution appears SC iff there is a happens-before
//! relation under which every read returns the value written by the
//! *last* write on the same variable ordered before it (unique for
//! DRF0). [`check_appears_sc`] implements that criterion.

use std::collections::HashMap;
use std::fmt;

use crate::exec::IdealizedExecution;
use crate::hb::{HappensBefore, HbMode};
use crate::ids::{Loc, OpId, ProcId, Value};

/// The canonical observable result of an execution: every read's
/// returned value (grouped per processor, in program order) plus the
/// final state of memory.
///
/// Two executions of the same program with equal `ExecResult`s are
/// indistinguishable under the paper's notion of result.
///
/// # Examples
///
/// ```
/// use weakord_core::{ExecBuilder, ExecResult, Loc, ProcId, Value};
/// let mut b = ExecBuilder::new(2);
/// b.data_write(ProcId::new(0), Loc::new(0), Value::new(1));
/// b.data_read(ProcId::new(1), Loc::new(0));
/// let r = ExecResult::of(&b.finish()?);
/// assert_eq!(r.reads[1], vec![Value::new(1)]);
/// assert_eq!(r.memory, vec![(Loc::new(0), Value::new(1))]);
/// # Ok::<(), weakord_core::ExecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExecResult {
    /// `reads[p]` lists the values returned by processor `p`'s read
    /// components, in program order. Hypothetical (augmentation) reads
    /// are excluded.
    pub reads: Vec<Vec<Value>>,
    /// Final memory state over the locations the execution accessed,
    /// sorted by location.
    pub memory: Vec<(Loc, Value)>,
}

impl ExecResult {
    /// Extracts the result of an execution. Reads with no recorded value
    /// are reported as [`Value::ZERO`] (machines should always record
    /// values; this keeps extraction total).
    pub fn of(exec: &IdealizedExecution) -> Self {
        let mut reads = vec![Vec::new(); exec.n_procs()];
        for op in exec.ops() {
            if op.hypothetical || op.loc.is_augment() {
                continue;
            }
            if op.kind.has_read() {
                reads[op.proc.index()].push(op.read_value.unwrap_or(Value::ZERO));
            }
        }
        let memory = exec.final_memory().into_iter().collect();
        ExecResult { reads, memory }
    }
}

impl fmt::Display for ExecResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "reads:")?;
        for (p, vals) in self.reads.iter().enumerate() {
            write!(f, " P{p}=[")?;
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "]")?;
        }
        write!(f, " mem:{{")?;
        for (i, (l, v)) in self.memory.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Why an observed execution fails the Lemma 1 appears-SC criterion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScViolation {
    /// A read did not return the value of the last happens-before-ordered
    /// write on its location.
    ReadValue {
        /// The offending read (id within the *augmented* execution).
        read: OpId,
        /// Issuing processor of the read.
        proc: ProcId,
        /// The location read.
        loc: Loc,
        /// The value returned.
        got: Option<Value>,
        /// The value of the last hb-ordered write.
        want: Value,
    },
    /// The last hb-ordered write was not unique — the execution's program
    /// has a race on this location (DRF0 would forbid it), so Lemma 1's
    /// uniqueness premise fails.
    AmbiguousLastWrite {
        /// The read whose source is ambiguous.
        read: OpId,
        /// The unordered maximal candidate writes.
        candidates: Vec<OpId>,
    },
}

impl fmt::Display for ScViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScViolation::ReadValue { read, proc, loc, got, want } => match got {
                Some(got) => write!(
                    f,
                    "read {read} by {proc} on {loc} returned {got}, last hb-ordered write supplied {want}"
                ),
                None => write!(f, "read {read} by {proc} on {loc} has no value, expected {want}"),
            },
            ScViolation::AmbiguousLastWrite { read, candidates } => {
                write!(f, "read {read} has {} unordered maximal writes (racy program)", candidates.len())
            }
        }
    }
}

impl std::error::Error for ScViolation {}

/// Checks the Lemma 1 criterion on an observed execution: under the
/// happens-before relation induced by the observed synchronization
/// completion order, every read must return the value of the last write
/// on the same variable ordered before it by happens-before.
///
/// The execution is augmented (Section 4) first, so reads of the initial
/// state have the hypothetical initializing write as their source, and
/// the final state of memory is checked through the hypothetical final
/// reads.
///
/// For executions of DRF0 programs this is *necessary and sufficient*
/// for appearing sequentially consistent (Lemma 1). For racy programs
/// the check may report [`ScViolation::AmbiguousLastWrite`].
///
/// # Errors
///
/// Returns the first violation found, scanning reads in completion
/// order.
pub fn check_appears_sc(exec: &IdealizedExecution, mode: HbMode) -> Result<(), ScViolation> {
    let aug = exec.augment();
    let hb = HappensBefore::compute(&aug, mode);
    // Writes per location in completion order, and whether each
    // location's writes are *totally* hb-ordered. The listing order of
    // an idealized execution is consistent with hb, so totality follows
    // from consecutive pairs being ordered — and with totality, the
    // unique last hb-prior write of a read is the first hb-hit scanning
    // backwards, turning the check linear for the (race-free) common
    // case. Spin-heavy traces from the timed simulator need this.
    let mut writes: HashMap<Loc, Vec<OpId>> = HashMap::new();
    for op in aug.ops() {
        if op.kind.has_write() {
            writes.entry(op.loc).or_default().push(op.id);
        }
    }
    let mut total: HashMap<Loc, bool> = HashMap::new();
    for (loc, ws) in &writes {
        total.insert(*loc, ws.windows(2).all(|w| hb.ordered(w[0], w[1])));
    }
    for op in aug.ops() {
        if !op.kind.has_read() {
            continue;
        }
        let empty = Vec::new();
        let loc_writes = writes.get(&op.loc).unwrap_or(&empty);
        // Only writes listed before the read can be hb-prior.
        let before = loc_writes.partition_point(|w| *w < op.id);
        let want = if total.get(&op.loc).copied().unwrap_or(true) {
            // Fast path: writes totally ordered — the first hb-hit
            // scanning backwards is the unique last write. The op's own
            // write (RMW) does not precede its read (footnote 5: the
            // read of a synchronization operation occurs before its
            // write), and hb is irreflexive, so no special-casing.
            loc_writes[..before]
                .iter()
                .rev()
                .find(|&&w| hb.ordered(w, op.id))
                .map_or(Value::ZERO, |&w| aug.op(w).written_value.unwrap_or(Value::ZERO))
        } else {
            // Slow path (racy location): compute the maximal
            // hb-predecessor antichain.
            let mut maximal: Vec<OpId> = Vec::new();
            for &w in &loc_writes[..before] {
                if w == op.id || !hb.ordered(w, op.id) {
                    continue;
                }
                if maximal.iter().any(|&m| hb.ordered(w, m)) {
                    continue;
                }
                maximal.retain(|&m| !hb.ordered(m, w));
                maximal.push(w);
            }
            match maximal.len() {
                0 => Value::ZERO, // no hb-prior write: initial value
                1 => aug.op(maximal[0]).written_value.unwrap_or(Value::ZERO),
                _ => {
                    return Err(ScViolation::AmbiguousLastWrite {
                        read: op.id,
                        candidates: maximal,
                    });
                }
            }
        };
        if op.read_value != Some(want) {
            return Err(ScViolation::ReadValue {
                read: op.id,
                proc: op.proc,
                loc: op.loc,
                got: op.read_value,
                want,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecBuilder;
    use crate::op::MemOp;

    const P0: ProcId = ProcId::new(0);
    const P1: ProcId = ProcId::new(1);

    fn loc(i: u32) -> Loc {
        Loc::new(i)
    }

    #[test]
    fn atomic_interleavings_appear_sc() {
        let (x, s) = (loc(0), loc(1));
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.sync_rmw(P0, s);
        b.sync_rmw(P1, s);
        b.data_read(P1, x);
        let e = b.finish().unwrap();
        check_appears_sc(&e, HbMode::Drf0).unwrap();
    }

    #[test]
    fn stale_read_across_release_fails() {
        // P1 acquires after P0's release but reads the old value of x:
        // not SC-appearing.
        let (x, s) = (loc(0), loc(1));
        let mut ops = Vec::new();
        ops.push(MemOp::data_write(P0, x, Value::new(1)));
        let mut rel = MemOp::sync_rmw(P0, s, Some(Value::new(1)));
        rel.read_value = Some(Value::ZERO);
        ops.push(rel);
        let mut acq = MemOp::sync_rmw(P1, s, Some(Value::new(1)));
        acq.read_value = Some(Value::new(1));
        ops.push(acq);
        let mut r = MemOp::data_read(P1, x);
        r.read_value = Some(Value::ZERO); // stale!
        ops.push(r);
        let e = IdealizedExecution::from_observed(2, ops).unwrap();
        let err = check_appears_sc(&e, HbMode::Drf0).unwrap_err();
        assert!(matches!(err, ScViolation::ReadValue { want, .. } if want == Value::new(1)));
    }

    #[test]
    fn stale_read_without_synchronization_is_tolerated_for_racy_reads() {
        // With no synchronization, the stale read has no hb-prior program
        // write; its last hb write is the init write (value 0), so a read
        // of 0 passes even though the write completed earlier. This is
        // precisely why Definition 2 only promises SC to race-free
        // software.
        let x = loc(0);
        let mut ops = Vec::new();
        ops.push(MemOp::data_write(P0, x, Value::new(1)));
        let mut r = MemOp::data_read(P1, x);
        r.read_value = Some(Value::ZERO);
        ops.push(r);
        let e = IdealizedExecution::from_observed(2, ops).unwrap();
        check_appears_sc(&e, HbMode::Drf0).unwrap();
    }

    #[test]
    fn unordered_writes_make_final_read_ambiguous() {
        // Two unordered program writes to x: the hypothetical final read
        // has two maximal hb-prior writes.
        let x = loc(0);
        let ops =
            vec![MemOp::data_write(P0, x, Value::new(1)), MemOp::data_write(P1, x, Value::new(2))];
        let e = IdealizedExecution::from_observed(2, ops).unwrap();
        let err = check_appears_sc(&e, HbMode::Drf0).unwrap_err();
        assert!(
            matches!(err, ScViolation::AmbiguousLastWrite { candidates, .. } if candidates.len() == 2)
        );
    }

    #[test]
    fn rmw_read_precedes_its_own_write() {
        // A single TestAndSet on a fresh location must read 0, not its
        // own stored 1 (footnote 5).
        let s = loc(0);
        let mut b = ExecBuilder::new(1);
        b.sync_rmw(P0, s);
        let e = b.finish().unwrap();
        assert_eq!(e.op(OpId::new(0)).read_value, Some(Value::ZERO));
        check_appears_sc(&e, HbMode::Drf0).unwrap();
    }

    #[test]
    fn exec_result_groups_reads_per_processor() {
        let x = loc(0);
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(3));
        b.data_read(P1, x);
        b.data_read(P1, x);
        let e = b.finish().unwrap();
        let r = ExecResult::of(&e);
        assert_eq!(r.reads[0], Vec::<Value>::new());
        assert_eq!(r.reads[1], vec![Value::new(3), Value::new(3)]);
        assert_eq!(r.memory, vec![(x, Value::new(3))]);
    }

    #[test]
    fn exec_result_excludes_augmentation_ops() {
        let x = loc(0);
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.data_read(P1, x);
        let e = b.finish().unwrap();
        assert_eq!(ExecResult::of(&e.augment()), ExecResult::of(&e));
    }

    #[test]
    fn exec_result_display_is_informative() {
        let x = loc(0);
        let mut b = ExecBuilder::new(1);
        b.data_write(P0, x, Value::new(2));
        b.data_read(P0, x);
        let r = ExecResult::of(&b.finish().unwrap());
        let s = r.to_string();
        assert!(s.contains("P0=[2]"), "{s}");
        assert!(s.contains("loc0=2"), "{s}");
    }

    #[test]
    fn violation_display() {
        let v = ScViolation::ReadValue {
            read: OpId::new(3),
            proc: P1,
            loc: loc(0),
            got: Some(Value::ZERO),
            want: Value::new(1),
        };
        assert!(v.to_string().contains("returned 0"));
        let a = ScViolation::AmbiguousLastWrite {
            read: OpId::new(2),
            candidates: vec![OpId::new(0), OpId::new(1)],
        };
        assert!(a.to_string().contains("2 unordered"));
    }
}

/// Decides whether an observed execution is *serializable*: does some
/// total order of its operations, consistent with each processor's
/// program order, replay atomically with exactly the observed read
/// values and final memory?
///
/// This is the direct (exponential) form of Lamport's definition. It
/// applies to **any** execution — including executions of racy programs,
/// where the Lemma 1 criterion ([`check_appears_sc`]) may report an
/// ambiguity instead. The search is exhaustive with memoization on
/// (per-processor progress, memory) states; use it for litmus-scale
/// executions only.
///
/// The execution's per-processor operation order is taken as program
/// order (the order in `IdealizedExecution::proc_ops`).
#[allow(clippy::needless_range_loop)] // `p` indexes two parallel per-processor structures
pub fn is_execution_serializable(exec: &IdealizedExecution) -> bool {
    use std::collections::HashSet;

    let n_procs = exec.n_procs();
    let per_proc: Vec<&[OpId]> =
        (0..n_procs).map(|p| exec.proc_ops(ProcId::new(p as u16))).collect();
    // Memory over the accessed locations only, in a dense vector.
    let locs = exec.locations();
    let loc_index = |l: Loc| locs.binary_search(&l).expect("accessed location");
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct St {
        next: Vec<u32>,
        mem: Vec<Value>,
    }
    let initial = St { next: vec![0; n_procs], mem: vec![Value::ZERO; locs.len()] };
    let mut stack = vec![initial.clone()];
    let mut seen: HashSet<St> = HashSet::new();
    seen.insert(initial);
    let total: usize = per_proc.iter().map(|v| v.len()).sum();
    while let Some(st) = stack.pop() {
        let placed: usize = st.next.iter().map(|&i| i as usize).sum();
        if placed == total {
            return true;
        }
        for p in 0..n_procs {
            let Some(&op_id) = per_proc[p].get(st.next[p] as usize) else {
                continue;
            };
            let op = exec.op(op_id);
            let slot = loc_index(op.loc);
            // The observed read value must match the replayed memory.
            if op.kind.has_read() && op.read_value != Some(st.mem[slot]) {
                continue;
            }
            let mut next = st.clone();
            next.next[p] += 1;
            if let Some(v) = op.written_value {
                next.mem[slot] = v;
            }
            if seen.insert(next.clone()) {
                stack.push(next);
            }
        }
    }
    false
}

#[cfg(test)]
mod serializable_tests {
    use super::*;
    use crate::exec::ExecBuilder;
    use crate::op::MemOp;

    const P0: ProcId = ProcId::new(0);
    const P1: ProcId = ProcId::new(1);

    fn loc(i: u32) -> Loc {
        Loc::new(i)
    }

    #[test]
    fn atomic_interleavings_are_serializable() {
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, loc(0), Value::new(1));
        b.data_read(P1, loc(0));
        b.data_write(P1, loc(1), Value::new(2));
        b.data_read(P0, loc(1));
        let e = b.finish().unwrap();
        assert!(is_execution_serializable(&e));
    }

    #[test]
    fn dekker_both_zero_is_not_serializable() {
        // P0: W(x)=1; R(y)->0   P1: W(y)=1; R(x)->0
        let mut ops = Vec::new();
        ops.push(MemOp::data_write(P0, loc(0), Value::new(1)));
        let mut r0 = MemOp::data_read(P0, loc(1));
        r0.read_value = Some(Value::ZERO);
        ops.push(r0);
        ops.push(MemOp::data_write(P1, loc(1), Value::new(1)));
        let mut r1 = MemOp::data_read(P1, loc(0));
        r1.read_value = Some(Value::ZERO);
        ops.push(r1);
        let e = IdealizedExecution::from_observed(2, ops).unwrap();
        assert!(!is_execution_serializable(&e));
    }

    #[test]
    fn one_stale_read_is_serializable_when_orderable() {
        // P1 reads 0 from x although P0 wrote 1 "earlier" in real time:
        // a serialization placing the read first explains it.
        let mut ops = Vec::new();
        ops.push(MemOp::data_write(P0, loc(0), Value::new(1)));
        let mut r = MemOp::data_read(P1, loc(0));
        r.read_value = Some(Value::ZERO);
        ops.push(r);
        let e = IdealizedExecution::from_observed(2, ops).unwrap();
        assert!(is_execution_serializable(&e));
    }

    #[test]
    fn coherence_violation_is_not_serializable() {
        // P1 reads 1 then 0 from the same location with only one write:
        // no replay can un-write.
        let mut ops = Vec::new();
        ops.push(MemOp::data_write(P0, loc(0), Value::new(1)));
        let mut r1 = MemOp::data_read(P1, loc(0));
        r1.read_value = Some(Value::new(1));
        ops.push(r1);
        let mut r2 = MemOp::data_read(P1, loc(0));
        r2.read_value = Some(Value::ZERO);
        ops.push(r2);
        let e = IdealizedExecution::from_observed(2, ops).unwrap();
        assert!(!is_execution_serializable(&e));
    }

    #[test]
    fn rmw_values_constrain_the_order() {
        // Two TestAndSets both reading 0: impossible.
        let mut a = MemOp::sync_rmw(P0, loc(0), Some(Value::new(1)));
        a.read_value = Some(Value::ZERO);
        let mut b = MemOp::sync_rmw(P1, loc(0), Some(Value::new(1)));
        b.read_value = Some(Value::ZERO);
        let e = IdealizedExecution::from_observed(2, vec![a, b]).unwrap();
        assert!(!is_execution_serializable(&e));
        // One winning, one losing: fine.
        let mut a = MemOp::sync_rmw(P0, loc(0), Some(Value::new(1)));
        a.read_value = Some(Value::ZERO);
        let mut b = MemOp::sync_rmw(P1, loc(0), Some(Value::new(1)));
        b.read_value = Some(Value::new(1));
        let e = IdealizedExecution::from_observed(2, vec![a, b]).unwrap();
        assert!(is_execution_serializable(&e));
    }

    #[test]
    fn empty_execution_is_serializable() {
        let e = ExecBuilder::new(0).finish().unwrap();
        assert!(is_execution_serializable(&e));
    }
}
