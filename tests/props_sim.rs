//! Property tests spanning the crates: the cycle-level machine is
//! deterministic, terminates, respects Lemma 1 on race-free programs,
//! and produces sequentially consistent results under the SC policy —
//! for randomly generated programs, policies, seeds, and network
//! parameters.

// Gated: compiling this suite needs the external `proptest` crate,
// which hermetic builds cannot fetch. Enable with `--features proptest`
// after restoring the dev-dependency (see DESIGN.md).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use weakord::coherence::{CoherentMachine, Config, NetModel, Policy, RunResult, SyncPolicy};
use weakord::core::HbMode;
use weakord::progs::gen::{race_free, racy, GenParams};
use weakord::progs::Program;

fn any_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Sc),
        Just(Policy::Def1),
        Just(Policy::def2()),
        Just(Policy::def2_drf1()),
        (1u32..4).prop_map(|cap| Policy::Def2 {
            drf1_refined: false,
            miss_cap: Some(cap),
            sync: SyncPolicy::Queue
        }),
    ]
}

fn any_network() -> impl Strategy<Value = NetModel> {
    prop_oneof![
        (1u64..10).prop_map(|c| NetModel::Bus { cycles: c }),
        (1u64..30).prop_map(|c| NetModel::Crossbar { cycles: c }),
        (1u64..40, 40u64..200).prop_map(|(min, max)| NetModel::General { min, max }),
    ]
}

fn run(prog: &Program, policy: Policy, network: NetModel, seed: u64, trace: bool) -> RunResult {
    let cfg = Config { policy, network, seed, record_trace: trace, ..Config::default() };
    CoherentMachine::new(prog, cfg)
        .run()
        .unwrap_or_else(|e| panic!("{} under {}: {e}", prog.name, policy.name()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same program, policy, network and seed: identical results,
    /// cycle counts and message counters.
    #[test]
    fn runs_are_deterministic(
        prog_seed in 0u64..50,
        policy in any_policy(),
        network in any_network(),
        seed in 0u64..1000,
    ) {
        let prog = race_free(prog_seed, GenParams::default());
        let a = run(&prog, policy, network, seed, false);
        let b = run(&prog, policy, network, seed, false);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.counters, b.counters);
    }

    /// Race-free programs appear sequentially consistent (Lemma 1) on
    /// every policy, schedule and network.
    #[test]
    fn race_free_programs_satisfy_lemma_1(
        prog_seed in 0u64..50,
        policy in any_policy(),
        network in any_network(),
        seed in 0u64..1000,
    ) {
        let prog = race_free(prog_seed, GenParams::default());
        let r = run(&prog, policy, network, seed, true);
        let mode = if policy == Policy::def2_drf1() { HbMode::Drf1 } else { HbMode::Drf0 };
        r.check_appears_sc(mode).unwrap();
    }

    /// Even racy programs terminate and leave the system drained.
    #[test]
    fn racy_programs_terminate(
        prog_seed in 0u64..50,
        policy in any_policy(),
        seed in 0u64..1000,
    ) {
        let prog = racy(prog_seed, GenParams::default());
        let r = run(&prog, policy, NetModel::General { min: 5, max: 100 }, seed, false);
        prop_assert!(r.cycles > 0 || prog.memory_instr_count() == 0);
    }

    /// The SC policy satisfies Lemma 1 even for racy programs whose
    /// races the witness can order (reads always return the latest
    /// committed value when every access is globally performed in
    /// order) — at minimum, it never deadlocks and matches its own
    /// rerun.
    #[test]
    fn sc_policy_is_reproducible_on_racy_programs(
        prog_seed in 0u64..50,
        seed in 0u64..1000,
    ) {
        let prog = racy(prog_seed, GenParams::default());
        let a = run(&prog, Policy::Sc, NetModel::General { min: 5, max: 100 }, seed, false);
        let b = run(&prog, Policy::Sc, NetModel::General { min: 5, max: 100 }, seed, false);
        prop_assert_eq!(a.outcome, b.outcome);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under the SC policy, the observed execution of ANY program —
    /// including racy ones — must be directly serializable: some total
    /// order consistent with program order replays the exact observed
    /// read values. This checks the SC policy against Lamport's
    /// definition itself, not just against outcome sets.
    #[test]
    fn sc_policy_executions_are_serializable(
        prog_seed in 0u64..40,
        seed in 0u64..500,
        racy_prog in proptest::bool::ANY,
    ) {
        let prog = if racy_prog {
            racy(prog_seed, GenParams::default())
        } else {
            race_free(prog_seed, GenParams::default())
        };
        let r = run(&prog, Policy::Sc, NetModel::General { min: 5, max: 60 }, seed, true);
        let exec = r.execution.as_ref().expect("traced");
        prop_assert!(
            weakord::core::is_execution_serializable(exec),
            "{}: SC policy produced a non-serializable execution",
            prog.name
        );
    }

    /// Agreement of the two per-execution criteria on race-free
    /// programs: whenever Lemma 1 accepts a weakly-ordered run, the
    /// execution is also directly serializable.
    #[test]
    fn lemma_1_acceptance_implies_serializability(
        prog_seed in 0u64..40,
        seed in 0u64..500,
    ) {
        let prog = race_free(prog_seed, GenParams::default());
        let r = run(&prog, Policy::def2(), NetModel::General { min: 5, max: 60 }, seed, true);
        r.check_appears_sc(HbMode::Drf0).unwrap();
        let exec = r.execution.as_ref().expect("traced");
        prop_assert!(weakord::core::is_execution_serializable(exec));
    }
}
