//! Synchronization models: the software side of the weak-ordering
//! contract.
//!
//! "Let a synchronization model be a set of constraints on memory
//! accesses that specify how and when synchronization needs to be done"
//! (Section 3). Definition 2 then reads: *hardware is weakly ordered
//! with respect to a synchronization model if and only if it appears
//! sequentially consistent to all software that obey the synchronization
//! model.*
//!
//! [`SynchronizationModel`] captures the software obligation; the
//! hardware obligation ("appears sequentially consistent") is checked by
//! `weakord-mc`'s contract module, which quantifies over programs and
//! executions.

use std::fmt;

use crate::drf0::{check_drf, DrfReport};
use crate::exec::IdealizedExecution;
use crate::hb::HbMode;

/// A set of constraints on memory accesses specifying how and when
/// synchronization must be done.
///
/// An implementation judges *executions on the idealized architecture*;
/// a program obeys the model iff every one of its idealized executions
/// does (Definition 3 quantifies over all such executions — the model
/// checker in `weakord-mc` performs that quantification).
pub trait SynchronizationModel: fmt::Debug {
    /// Short human-readable name (e.g. `"DRF0"`).
    fn name(&self) -> &'static str;

    /// The happens-before construction this model uses.
    fn hb_mode(&self) -> HbMode;

    /// Checks one idealized execution against the model.
    ///
    /// The default checks Definition 3 condition (2): every conflicting
    /// pair ordered by the model's happens-before relation (after
    /// Section 4 augmentation).
    fn check_execution(&self, exec: &IdealizedExecution) -> DrfReport {
        check_drf(exec, self.hb_mode())
    }

    /// Convenience: `true` iff the execution obeys the model.
    fn obeys(&self, exec: &IdealizedExecution) -> bool {
        self.check_execution(exec).is_race_free()
    }
}

/// Data-Race-Free-0 (Definition 3): every synchronization operation is
/// hardware-recognizable and single-location (true by construction in
/// this framework), and all conflicting accesses are ordered by
/// happens-before in every idealized execution.
///
/// # Examples
///
/// ```
/// use weakord_core::{Drf0, ExecBuilder, Loc, ProcId, SynchronizationModel, Value};
/// let mut b = ExecBuilder::new(2);
/// b.data_write(ProcId::new(0), Loc::new(0), Value::new(1));
/// b.sync_rmw(ProcId::new(0), Loc::new(1));
/// b.sync_rmw(ProcId::new(1), Loc::new(1));
/// b.data_read(ProcId::new(1), Loc::new(0));
/// assert!(Drf0.obeys(&b.finish()?));
/// # Ok::<(), weakord_core::ExecError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Drf0;

impl SynchronizationModel for Drf0 {
    fn name(&self) -> &'static str {
        "DRF0"
    }

    fn hb_mode(&self) -> HbMode {
        HbMode::Drf0
    }
}

/// The Section 6 refinement of DRF0: read-only synchronization
/// operations cannot be used to order a processor's previous accesses
/// with respect to subsequent synchronization operations of other
/// processors. Happens-before edges run only from synchronization
/// operations with a write component; sync-sync pairs are exempt from
/// race reporting.
///
/// Every DRF1-conformant execution is trivially DRF0-checkable, but the
/// converse fails: DRF1 is *stricter* about what software may rely on
/// (fewer hb edges), which is exactly what buys the hardware the freedom
/// not to serialize read-only synchronization (Section 6, and policy
/// `Def2Drf1` in `weakord-coherence`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Drf1;

impl SynchronizationModel for Drf1 {
    fn name(&self) -> &'static str {
        "DRF1"
    }

    fn hb_mode(&self) -> HbMode {
        HbMode::Drf1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecBuilder;
    use crate::ids::{Loc, ProcId, Value};

    const P0: ProcId = ProcId::new(0);
    const P1: ProcId = ProcId::new(1);

    #[test]
    fn names_and_modes() {
        assert_eq!(Drf0.name(), "DRF0");
        assert_eq!(Drf0.hb_mode(), HbMode::Drf0);
        assert_eq!(Drf1.name(), "DRF1");
        assert_eq!(Drf1.hb_mode(), HbMode::Drf1);
    }

    #[test]
    fn drf1_accepts_what_it_should_and_rejects_read_only_releases() {
        let (x, s) = (Loc::new(0), Loc::new(1));
        // Release with a write-component sync: fine under both models.
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.sync_write(P0, s);
        b.sync_rmw(P1, s);
        b.data_read(P1, x);
        let good = b.finish().unwrap();
        assert!(Drf0.obeys(&good));
        assert!(Drf1.obeys(&good));
        // "Release" via a read-only sync: DRF0 accepts, DRF1 rejects.
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x, Value::new(1));
        b.sync_read(P0, s);
        b.sync_rmw(P1, s);
        b.data_read(P1, x);
        let sneaky = b.finish().unwrap();
        assert!(Drf0.obeys(&sneaky));
        assert!(!Drf1.obeys(&sneaky));
    }

    #[test]
    fn models_are_usable_as_trait_objects() {
        let models: Vec<Box<dyn SynchronizationModel>> = vec![Box::new(Drf0), Box::new(Drf1)];
        let e = ExecBuilder::new(1).finish().unwrap();
        for m in &models {
            assert!(m.obeys(&e), "{} rejects the empty execution", m.name());
        }
    }
}
