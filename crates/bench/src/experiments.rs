//! The experiments, one function per paper artifact.
//!
//! | id | artifact | function |
//! |----|----------|----------|
//! | E1 | Figure 1 (four hardware configurations) | [`e1_figure1`] |
//! | E2 | Figure 2 (DRF0 example & counter-example) | [`e2_figure2`] |
//! | E3 | Definition 2 contract (Appendix B theorem) | [`e3_contract`] |
//! | E4 | Figure 3 (release stall, Def. 1 vs Def. 2) | [`e4_figure3`] |
//! | E5 | Section 6 spin pathology & DRF1 refinement | [`e5_spin`] |
//! | E6 | Section 5.3 termination / deadlock freedom | [`e6_termination`] |
//! | E7 | Ablations (parallel data, miss cap, networks) | [`e7_ablations`] |
//! | E9 | Fault-injected interconnect & the NACK leg | [`e9_faults`] |
//! | E10 | Observability: tracer overhead & volume | [`e10_observability`] |
//! | E13 | Explorer engines: lock-free vs mutex-shard throughput | [`e13_explore_engines`] |

use std::fmt::Write as _;

use weakord_coherence::{
    CoherentMachine, Config, NetModel, Policy, RunResult, StallCause, SyncPolicy,
};
use weakord_core::{check_drf, figures, HbMode};
use weakord_mc::machines::{
    BnrMachine, CacheDelayMachine, NetReorderMachine, PsoMachine, ScMachine, TsoMachine,
    WoDef1Machine, WoDef2Machine, WriteBufferMachine,
};
use weakord_mc::{check_weak_ordering, explore, explore_legacy, Limits, Machine, TraceLimits};
use weakord_progs::workloads::{
    fig3_scenario, spin_broadcast, ticket_lock, tree_barrier, Fig3Params, SpinBroadcastParams,
    SpinlockParams, TreeBarrierParams,
};
use weakord_progs::{gen, litmus, workloads, Program};

/// A rendered experiment table: title, column headers, and rows of
/// cells, plus the shape check verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id and title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
    /// The paper's qualitative claim, and whether our run matched it.
    pub shape: Vec<(String, bool)>,
}

impl Table {
    fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            shape: Vec::new(),
        }
    }

    fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    fn check(&mut self, claim: impl Into<String>, holds: bool) {
        self.shape.push((claim.into(), holds));
    }

    /// Returns `true` iff every shape check passed.
    pub fn shape_holds(&self) -> bool {
        self.shape.iter().all(|(_, ok)| *ok)
    }

    /// Renders the table as CSV (header row, then data rows; the shape
    /// checks become trailing comment lines).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ =
            writeln!(out, "{}", self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        for (claim, ok) in &self.shape {
            let _ = writeln!(out, "# shape: {} — {}", claim, if *ok { "HOLDS" } else { "FAILED" });
        }
        out
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        for (claim, ok) in &self.shape {
            let _ = writeln!(out, "  shape: {} — {}", claim, if *ok { "HOLDS" } else { "FAILED" });
        }
        out
    }
}

fn run_timed(prog: &Program, policy: Policy, seed: u64) -> RunResult {
    let cfg = Config { policy, seed, ..Config::default() };
    CoherentMachine::new(prog, cfg)
        .run()
        .unwrap_or_else(|e| panic!("{} under {}: {e}", prog.name, policy.name()))
}

/// E1 / Figure 1: the Dekker-style violation across the paper's four
/// hardware configurations, plus the SC reference and the two weakly
/// ordered machines.
pub fn e1_figure1() -> Table {
    let mut t = Table::new(
        "E1 · Figure 1 — can hardware kill both processors?",
        &["configuration", "machine", "fig1 outcome", "dekker-sync (DRF0)", "states"],
    );
    let lit = litmus::fig1_dekker();
    let sync = litmus::dekker_sync();
    let mut violations = Vec::new();
    let mut sync_violations = Vec::new();
    let mut add = |t: &mut Table,
                   config: &str,
                   name: &'static str,
                   f: &dyn Fn(&Program) -> weakord_mc::Exploration| {
        let ex = f(&lit.program);
        let violated = ex.outcomes.iter().any(|o| (lit.non_sc)(o));
        let ex_sync = f(&sync.program);
        let sync_violated = ex_sync.outcomes.iter().any(|o| (sync.non_sc)(o));
        violations.push((name, violated));
        sync_violations.push((name, sync_violated));
        t.row(vec![
            config.to_string(),
            name.to_string(),
            if violated { "possible" } else { "impossible" }.to_string(),
            if sync_violated { "possible" } else { "impossible" }.to_string(),
            ex.states.to_string(),
        ]);
    };
    let lim = Limits::default();
    add(&mut t, "reference", "sc", &|p| explore(&ScMachine, p, lim));
    add(&mut t, "bus, no caches (write buffers)", "write-buffer", &|p| {
        explore(&WriteBufferMachine, p, lim)
    });
    add(&mut t, "general network, no caches", "net-reorder", &|p| {
        explore(&NetReorderMachine, p, lim)
    });
    add(&mut t, "coherent bus (write buffers)", "write-buffer", &|p| {
        explore(&WriteBufferMachine, p, lim)
    });
    add(&mut t, "coherent general network", "cache-delay", &|p| {
        explore(&CacheDelayMachine, p, lim)
    });
    add(&mut t, "weak ordering, Definition 1", "wo-def1", &|p| explore(&WoDef1Machine, p, lim));
    add(&mut t, "weak ordering, Section 5 impl.", "wo-def2", &|p| {
        explore(&WoDef2Machine::default(), p, lim)
    });
    let relaxed_all = violations.iter().filter(|(n, _)| *n != "sc").all(|(_, v)| *v);
    let sc_never = !violations.iter().any(|(n, v)| *n == "sc" && *v);
    let wo_keep_drf0 =
        sync_violations.iter().filter(|(n, _)| n.starts_with("wo-")).all(|(_, v)| !*v);
    t.check("violation possible on all four relaxed configurations", relaxed_all);
    t.check("violation impossible under sequential consistency", sc_never);
    t.check("weakly ordered machines forbid it for the DRF0 rewrite", wo_keep_drf0);
    t
}

/// E2 / Figure 2: the example and counter-example executions against
/// DRF0.
pub fn e2_figure2() -> Table {
    let mut t = Table::new(
        "E2 · Figure 2 — DRF0 example and counter-example",
        &["execution", "conflicting pairs", "races", "verdict"],
    );
    let a = check_drf(&figures::figure_2a(), HbMode::Drf0);
    let b = check_drf(&figures::figure_2b(), HbMode::Drf0);
    t.row(vec![
        "figure 2(a)".into(),
        a.conflicting_pairs.to_string(),
        a.races.len().to_string(),
        if a.is_race_free() { "obeys DRF0" } else { "violates DRF0" }.into(),
    ]);
    t.row(vec![
        "figure 2(b)".into(),
        b.conflicting_pairs.to_string(),
        b.races.len().to_string(),
        if b.is_race_free() { "obeys DRF0" } else { "violates DRF0" }.into(),
    ]);
    t.check("figure 2(a) obeys DRF0", a.is_race_free());
    t.check(
        "figure 2(b) violates DRF0 (≥2 unordered pairs)",
        !b.is_race_free() && b.races.len() >= 2,
    );
    t
}

/// E3 / Definition 2 contract: every machine against the litmus suite
/// plus generated programs.
pub fn e3_contract(generated_seeds: u64) -> Table {
    let mut t = Table::new(
        "E3 · the weak-ordering contract (Definition 2 w.r.t. DRF0)",
        &[
            "machine",
            "conforming programs",
            "appears SC",
            "non-conforming",
            "relaxed on racy",
            "verdict",
        ],
    );
    let mut programs: Vec<Program> = litmus::all().into_iter().map(|l| l.program).collect();
    for seed in 0..generated_seeds {
        programs.push(gen::race_free(seed, gen::GenParams::default()));
        programs.push(gen::racy(seed, gen::GenParams::default()));
    }
    let lim = Limits::default();
    let tl = TraceLimits::default();
    let mut verdicts = Vec::new();
    let mut report_row = |t: &mut Table, name: &'static str, report: weakord_mc::ContractReport| {
        let conforming = report.rows.iter().filter(|r| r.conforming).count();
        let appears = report.rows.iter().filter(|r| r.conforming && r.appears_sc).count();
        let non_conforming = report.rows.len() - conforming;
        let relaxed = report.rows.iter().filter(|r| !r.conforming && !r.appears_sc).count();
        let holds = report.holds();
        verdicts.push((name, holds, relaxed));
        t.row(vec![
            name.to_string(),
            conforming.to_string(),
            format!("{appears}/{conforming}"),
            non_conforming.to_string(),
            relaxed.to_string(),
            if holds { "weakly ordered" } else { "NOT weakly ordered" }.to_string(),
        ]);
    };
    report_row(
        &mut t,
        "write-buffer",
        check_weak_ordering(&WriteBufferMachine, HbMode::Drf0, &programs, lim, tl),
    );
    report_row(
        &mut t,
        "net-reorder",
        check_weak_ordering(&NetReorderMachine, HbMode::Drf0, &programs, lim, tl),
    );
    report_row(
        &mut t,
        "cache-delay",
        check_weak_ordering(&CacheDelayMachine, HbMode::Drf0, &programs, lim, tl),
    );
    report_row(
        &mut t,
        "wo-bnr",
        check_weak_ordering(&BnrMachine, HbMode::Drf0, &programs, lim, tl),
    );
    report_row(
        &mut t,
        "wo-def1",
        check_weak_ordering(&WoDef1Machine, HbMode::Drf0, &programs, lim, tl),
    );
    report_row(
        &mut t,
        "wo-def2",
        check_weak_ordering(&WoDef2Machine::default(), HbMode::Drf0, &programs, lim, tl),
    );
    report_row(
        &mut t,
        "wo-def2-drf1*",
        check_weak_ordering(
            &WoDef2Machine { drf1_refined: true },
            HbMode::Drf1,
            &programs,
            lim,
            tl,
        ),
    );
    let wo_hold = verdicts.iter().filter(|(n, ..)| n.starts_with("wo-")).all(|(_, h, _)| *h);
    let relaxed_fail = verdicts.iter().filter(|(n, ..)| !n.starts_with("wo-")).all(|(_, h, _)| !*h);
    let wo_still_relax =
        verdicts.iter().filter(|(n, ..)| n.starts_with("wo-")).all(|(.., r)| *r > 0);
    t.check("both weak-ordering machines satisfy the contract", wo_hold);
    t.check("all sync-oblivious machines violate it", relaxed_fail);
    t.check("weakly ordered machines still relax racy programs", wo_still_relax);
    t
}

/// E4 / Figure 3: release-side stall under each policy, sweeping the
/// interconnect latency (which scales the global-perform time of the
/// outstanding writes).
pub fn e4_figure3() -> Table {
    let mut t = Table::new(
        "E4 · Figure 3 — who stalls at the release?",
        &[
            "net latency",
            "policy",
            "cycles",
            "P0 release stall",
            "P1 acquire wait",
            "P1 wait p95",
            "reserve stalls",
        ],
    );
    let params = Fig3Params {
        work_before_release: 20,
        work_after_release: 300,
        extra_writes: 8,
        consumer_work: 20,
    };
    let prog = fig3_scenario(params);
    let mut def1_stalls = Vec::new();
    let mut def2_stalls = Vec::new();
    let mut def1_cycles = Vec::new();
    let mut def2_cycles = Vec::new();
    for (min, max) in [(10u64, 30u64), (20, 60), (40, 120), (80, 240)] {
        for policy in [Policy::Sc, Policy::Def1, Policy::def2()] {
            let cfg = Config {
                policy,
                network: NetModel::General { min, max },
                seed: 7,
                ..Config::default()
            };
            let r = CoherentMachine::new(&prog, cfg).run().expect("fig3 runs");
            let p0 = r.proc_stats[0].stall(StallCause::SyncGate)
                + r.proc_stats[0].stall(StallCause::Performed);
            let p1 = r.proc_stats[1].stall(StallCause::SyncCommit)
                + r.proc_stats[1].stall(StallCause::Performed);
            if policy == Policy::Def1 {
                def1_stalls.push(p0);
                def1_cycles.push(r.cycles);
            }
            if policy == Policy::def2() {
                def2_stalls.push(p0);
                def2_cycles.push(r.cycles);
            }
            t.row(vec![
                format!("{min}..{max}"),
                policy.name().to_string(),
                r.cycles.to_string(),
                p0.to_string(),
                p1.to_string(),
                r.proc_stats[1].sync_wait.percentile(95.0).to_string(),
                r.counters.get("reserve-stalls").to_string(),
            ]);
        }
    }
    t.check("P0 never stalls at the release under Def. 2", def2_stalls.iter().all(|&s| s == 0));
    t.check(
        "P0's Def. 1 release stall grows with latency",
        def1_stalls.windows(2).all(|w| w[0] < w[1]) && def1_stalls[0] > 0,
    );
    t.check(
        "Def. 2 total time ≤ Def. 1 at every latency",
        def1_cycles.iter().zip(&def2_cycles).all(|(d1, d2)| d2 <= d1),
    );
    t
}

/// E5 / Section 6: the spin pathology and the DRF1 refinement, sweeping
/// the number of spinners.
pub fn e5_spin() -> Table {
    let mut t = Table::new(
        "E5 · Section 6 — spinning serializes under Def. 2; DRF1 refinement recovers",
        &["spinners", "policy", "cycles", "GetX", "GetS", "Inv"],
    );
    let mut plain_getx = Vec::new();
    let mut refined_getx = Vec::new();
    let mut plain_cycles = Vec::new();
    let mut refined_cycles = Vec::new();
    for n in [1u16, 2, 4, 8, 12] {
        let prog = spin_broadcast(SpinBroadcastParams { n_spinners: n, release_after: 600 });
        for policy in [Policy::Def1, Policy::def2(), Policy::def2_drf1()] {
            let r = run_timed(&prog, policy, 5);
            if policy == Policy::def2() {
                plain_getx.push(r.counters.get("GetX"));
                plain_cycles.push(r.cycles);
            }
            if policy == Policy::def2_drf1() {
                refined_getx.push(r.counters.get("GetX"));
                refined_cycles.push(r.cycles);
            }
            t.row(vec![
                n.to_string(),
                policy.name().to_string(),
                r.cycles.to_string(),
                r.counters.get("GetX").to_string(),
                r.counters.get("GetS").to_string(),
                r.counters.get("Inv").to_string(),
            ]);
        }
    }
    t.check(
        "plain Def. 2 exclusive traffic grows with spinners",
        plain_getx.windows(2).all(|w| w[0] <= w[1]) && plain_getx.last() > plain_getx.first(),
    );
    t.check(
        "refined spinners generate constant exclusive traffic",
        refined_getx.iter().all(|&g| g == refined_getx[0]),
    );
    t.check(
        "refinement is no slower anywhere and faster at high spinner counts",
        refined_cycles.iter().zip(&plain_cycles).all(|(r, p)| r <= p)
            && refined_cycles.last() < plain_cycles.last(),
    );
    t
}

/// E5b: the same Section 6 story on real synchronization structures —
/// central barrier vs. combining tree, Test-and-TestAndSet lock vs.
/// ticket lock.
///
/// One nuance the numbers surface: on TTS locks the refinement can
/// *lose* — shared-copy spinning lets every waiter observe the release
/// simultaneously and storm the lock with TestAndSets (the classic
/// thundering herd), while plain Def. 2's exclusive polling serializes
/// waiters through the directory queue and accidentally behaves like a
/// queue lock. Pure read-spin structures (barriers, ticket locks) get
/// the full benefit — which is exactly why they are the structures the
/// Section 6 discussion names.
pub fn e5b_structures() -> Table {
    let mut t = Table::new(
        "E5b · synchronization structures under the three implementations",
        &["structure", "procs", "policy", "cycles", "GetX", "GetS"],
    );
    let mut refined_wins = true;
    for n in [4u16, 8] {
        let progs = vec![
            workloads::barrier(workloads::BarrierParams { n_procs: n, rounds: 2, work: 30 }),
            tree_barrier(TreeBarrierParams { n_procs: n, rounds: 2, work: 30 }),
            workloads::spinlock_tts(SpinlockParams {
                n_procs: n,
                sections_per_proc: 2,
                writes_per_section: 1,
                think: 30,
            }),
            ticket_lock(SpinlockParams {
                n_procs: n,
                sections_per_proc: 2,
                writes_per_section: 1,
                think: 30,
            }),
        ];
        for prog in &progs {
            let mut cycles_by_policy = Vec::new();
            for policy in [Policy::Def1, Policy::def2(), Policy::def2_drf1()] {
                let r = run_timed(prog, policy, 5);
                cycles_by_policy.push(r.cycles);
                t.row(vec![
                    prog.name.clone(),
                    n.to_string(),
                    policy.name().to_string(),
                    r.cycles.to_string(),
                    r.counters.get("GetX").to_string(),
                    r.counters.get("GetS").to_string(),
                ]);
            }
            // The refinement must win on the pure read-spin structures
            // (barriers and the ticket lock); TTS is exempt — see the
            // thundering-herd note above.
            if prog.name != "spinlock-tts" {
                refined_wins &= cycles_by_policy[2] <= cycles_by_policy[1];
            }
        }
    }
    t.check("the DRF1 refinement wins on every pure read-spin structure", refined_wins);
    t
}

/// E6 / termination: every workload, policy and seed runs to
/// completion; counters drain; the directory goes quiescent.
pub fn e6_termination(seeds: u64) -> Table {
    let mut t = Table::new(
        "E6 · Section 5.3 — blocked processors always unblock",
        &["workload", "policies × seeds", "completed", "max cycles"],
    );
    let progs: Vec<Program> = vec![
        fig3_scenario(Fig3Params::default()),
        workloads::spinlock(workloads::SpinlockParams::default()),
        workloads::spinlock_tts(workloads::SpinlockParams::default()),
        workloads::barrier(workloads::BarrierParams::default()),
        workloads::producer_consumer(workloads::PcParams::default()),
        spin_broadcast(SpinBroadcastParams::default()),
    ];
    let policies = [Policy::Sc, Policy::Def1, Policy::def2(), Policy::def2_drf1()];
    let mut all_ok = true;
    for prog in &progs {
        let mut completed = 0u64;
        let mut attempts = 0u64;
        let mut max_cycles = 0u64;
        for policy in policies {
            for seed in 0..seeds {
                attempts += 1;
                let cfg = Config { policy, seed, ..Config::default() };
                match CoherentMachine::new(prog, cfg).run() {
                    Ok(r) => {
                        completed += 1;
                        max_cycles = max_cycles.max(r.cycles);
                    }
                    Err(_) => all_ok = false,
                }
            }
        }
        t.row(vec![
            prog.name.clone(),
            attempts.to_string(),
            completed.to_string(),
            max_cycles.to_string(),
        ]);
    }
    t.check("no deadlock or timeout across the sweep", all_ok);
    t
}

/// E7 / ablations: (a) parallel data-with-invalidations vs. strict
/// data-after-acks; (b) the Section 5.3 miss cap; (c) interconnect
/// models.
pub fn e7_ablations() -> Table {
    let mut t = Table::new(
        "E7 · ablations",
        &["ablation", "setting", "policy", "cycles", "P0 release stall"],
    );
    let prog = fig3_scenario(Fig3Params {
        work_before_release: 20,
        work_after_release: 300,
        extra_writes: 8,
        consumer_work: 20,
    });
    let p0_stall = |r: &RunResult| {
        r.proc_stats[0].stall(StallCause::SyncGate) + r.proc_stats[0].stall(StallCause::Performed)
    };
    // (a) parallel vs strict data forwarding. The parallelism puts the
    // write's *commit* ahead of its global perform; only policies for
    // which commit is on the critical path (Def. 2 gates sync commits on
    // line procurement) are hurt when data is withheld. The effect only
    // appears when acknowledgements can lag the data (random
    // per-message latencies), so it is averaged over seeds rather than
    // read off a single noisy run.
    let mut strict_cycles = 0u64;
    let mut parallel_cycles = 0u64;
    const FWD_SEEDS: std::ops::Range<u64> = 1..9;
    for strict in [false, true] {
        for policy in [Policy::Def1, Policy::def2()] {
            let mut cycles = 0u64;
            let mut stall = 0u64;
            for seed in FWD_SEEDS {
                let cfg = Config { policy, seed, strict_data: strict, ..Config::default() };
                let r = CoherentMachine::new(&prog, cfg).run().expect("runs");
                cycles += r.cycles;
                stall += p0_stall(&r);
            }
            let n = FWD_SEEDS.end - FWD_SEEDS.start;
            if policy == Policy::def2() {
                if strict {
                    strict_cycles = cycles;
                } else {
                    parallel_cycles = cycles;
                }
            }
            t.row(vec![
                "data forwarding".into(),
                if strict { "after acks (strict)" } else { "parallel (paper)" }.into(),
                policy.name().into(),
                (cycles / n).to_string(),
                (stall / n).to_string(),
            ]);
        }
    }
    // (b) miss cap sweep.
    for cap in [None, Some(1), Some(2), Some(8)] {
        let policy = Policy::Def2 { drf1_refined: false, miss_cap: cap, sync: SyncPolicy::Queue };
        let cfg = Config { policy, seed: 7, ..Config::default() };
        let r = CoherentMachine::new(&prog, cfg).run().expect("runs");
        t.row(vec![
            "miss cap".into(),
            cap.map_or("unlimited".to_string(), |c| c.to_string()),
            "def2".into(),
            r.cycles.to_string(),
            p0_stall(&r).to_string(),
        ]);
    }
    // (c) cache-to-cache forwarding vs directory recall: every ownership
    // change pays one extra network hop under recall.
    for no_forwarding in [false, true] {
        let cfg = Config { policy: Policy::def2(), seed: 7, no_forwarding, ..Config::default() };
        let r = CoherentMachine::new(&prog, cfg).run().expect("runs");
        t.row(vec![
            "ownership transfer".into(),
            if no_forwarding { "directory recall" } else { "cache-to-cache (paper)" }.into(),
            "def2".into(),
            r.cycles.to_string(),
            p0_stall(&r).to_string(),
        ]);
    }
    // (d) cache capacity: finite caches cost evictions but preserve the
    // Figure 3 shape (and reserved lines are never flushed).
    for cache_lines in [None, Some(8), Some(4), Some(2)] {
        let cfg = Config { policy: Policy::def2(), seed: 7, cache_lines, ..Config::default() };
        let r = CoherentMachine::new(&prog, cfg).run().expect("runs");
        t.row(vec![
            "cache capacity".into(),
            cache_lines.map_or("unbounded".to_string(), |c| format!("{c} lines")),
            "def2".into(),
            r.cycles.to_string(),
            p0_stall(&r).to_string(),
        ]);
    }
    // (e) memory banks: more module parallelism shortens the critical
    // path under contention.
    for banks in [1u32, 2, 4] {
        let cfg =
            Config { policy: Policy::def2(), seed: 7, memory_banks: banks, ..Config::default() };
        let r = CoherentMachine::new(&prog, cfg).run().expect("runs");
        t.row(vec![
            "memory banks".into(),
            banks.to_string(),
            "def2".into(),
            r.cycles.to_string(),
            p0_stall(&r).to_string(),
        ]);
    }
    // (f) interconnects.
    for (name, network) in [
        ("bus/4", NetModel::Bus { cycles: 4 }),
        ("crossbar/12", NetModel::Crossbar { cycles: 12 }),
        ("general 20..60", NetModel::General { min: 20, max: 60 }),
        ("general 80..240", NetModel::General { min: 80, max: 240 }),
        ("mesh 4x/6", NetModel::Mesh { width: 4, per_hop: 6, jitter: 8 }),
        (
            "congested 3%",
            NetModel::Congested { min: 20, max: 60, spike: 2_000, spike_permille: 30 },
        ),
    ] {
        let cfg = Config { policy: Policy::def2(), network, seed: 7, ..Config::default() };
        let r = CoherentMachine::new(&prog, cfg).run().expect("runs");
        t.row(vec![
            "interconnect".into(),
            name.into(),
            "def2".into(),
            r.cycles.to_string(),
            p0_stall(&r).to_string(),
        ]);
    }
    t.check(
        "withholding data until acks slows Def. 2 (commit is on its critical path)",
        parallel_cycles < strict_cycles,
    );
    t
}

/// E8: the model checker's state-space census — outcome and state
/// counts for every litmus test on every machine, with the containment
/// facts Definition 2 predicts.
pub fn e8_state_census() -> Table {
    let mut t = Table::new(
        "E8 · exhaustive exploration census (outcomes / states)",
        &[
            "litmus",
            "DRF0",
            "sc",
            "write-buffer",
            "net-reorder",
            "cache-delay",
            "wo-bnr",
            "wo-def1",
            "wo-def2",
        ],
    );
    let lim = Limits::default();
    let mut wo_contained = true;
    let mut relaxed_superset = true;
    for lit in litmus::all() {
        let sc = explore(&ScMachine, &lit.program, lim);
        let wb = explore(&WriteBufferMachine, &lit.program, lim);
        let net = explore(&NetReorderMachine, &lit.program, lim);
        let cd = explore(&CacheDelayMachine, &lit.program, lim);
        let bnr = explore(&BnrMachine, &lit.program, lim);
        let d1 = explore(&WoDef1Machine, &lit.program, lim);
        let d2 = explore(&WoDef2Machine::default(), &lit.program, lim);
        if lit.drf0 {
            wo_contained &= d1.outcomes.is_subset(&sc.outcomes)
                && d2.outcomes.is_subset(&sc.outcomes)
                && bnr.outcomes.is_subset(&sc.outcomes);
        }
        relaxed_superset &= wb.outcomes.is_superset(&sc.outcomes)
            && net.outcomes.is_superset(&sc.outcomes)
            && cd.outcomes.is_superset(&sc.outcomes);
        let cell = |e: &weakord_mc::Exploration| format!("{}/{}", e.outcomes.len(), e.states);
        t.row(vec![
            lit.name.to_string(),
            if lit.drf0 { "yes" } else { "no" }.to_string(),
            cell(&sc),
            cell(&wb),
            cell(&net),
            cell(&cd),
            cell(&bnr),
            cell(&d1),
            cell(&d2),
        ]);
    }
    t.check("weakly ordered outcome sets ⊆ SC on every DRF0 row", wo_contained);
    t.check("relaxing hardware only adds outcomes (⊇ SC everywhere)", relaxed_superset);
    t
}

/// E9 / robustness: the fault-injected interconnect (drop, duplicate,
/// reorder, delay-spike — all with eventual delivery) against both legs
/// of Section 5.1 for sync requests to reserved lines: queueing and
/// NACK/retry. Every run must terminate; DRF0 programs must stay inside
/// the SC outcome set; the NACK leg should actually bounce on the
/// hand-off workload.
pub fn e9_faults(schedules: u64) -> Table {
    use weakord_mc::sc_outcome_set;
    use weakord_sim::FaultPlan;
    let mut t = Table::new(
        "E9 · fault-injected interconnect (Section 5.1 NACK vs. queue legs)",
        &["program", "policy", "runs", "max cycles", "drops", "dups", "nacks", "retries"],
    );
    let progs: Vec<(Program, bool)> = litmus::all()
        .into_iter()
        .filter(|l| l.drf0)
        .map(|l| (l.program, true))
        .chain([(fig3_scenario(Fig3Params::default()), true)])
        .collect();
    let mut all_ok = true;
    let mut all_sc = true;
    let mut nack_fired = 0u64;
    for (prog, drf0) in &progs {
        let sc = drf0.then(|| sc_outcome_set(prog, Limits::default()));
        for policy in [Policy::def2(), Policy::def2_nack()] {
            let (mut max_cycles, mut drops, mut dups, mut nacks, mut retries) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            for i in 0..schedules {
                let faults = FaultPlan::with_rates(0xE9 ^ (i * 0x9E37), 60, 60, 80, 30);
                let cfg = Config { policy, seed: i, faults, ..Config::default() };
                match CoherentMachine::new(prog, cfg).run() {
                    Ok(r) => {
                        max_cycles = max_cycles.max(r.cycles);
                        drops += r.counters.get("fault-drops");
                        dups += r.counters.get("fault-dups");
                        nacks += r.counters.get("nacks");
                        retries += r.proc_stats.iter().map(|p| p.nack_retries).sum::<u64>();
                        if let Some(sc) = &sc {
                            all_sc &= sc.contains(&r.outcome);
                        }
                    }
                    Err(_) => all_ok = false,
                }
            }
            nack_fired += nacks;
            t.row(vec![
                prog.name.clone(),
                policy.name().to_string(),
                schedules.to_string(),
                max_cycles.to_string(),
                drops.to_string(),
                dups.to_string(),
                nacks.to_string(),
                retries.to_string(),
            ]);
        }
    }
    t.check("every faulted run terminates (eventual delivery ⇒ liveness)", all_ok);
    t.check("DRF0 outcomes stay inside the SC set under faults", all_sc);
    t.check("the NACK leg fires somewhere in the sweep", nack_fired > 0);
    t
}

/// E10 / observability: the tracer must be free when disabled and
/// faithful when enabled. Each workload runs three times from the same
/// config — no-op tracer, recording tracer, and a recording tracer with
/// capture gated off — and the simulated clock must agree exactly
/// (instrumentation lives outside the timing model).
pub fn e10_observability() -> Table {
    use weakord_obs::{chrome_trace, MemTracer};
    let mut t = Table::new(
        "E10 · observability — tracer overhead and trace volume",
        &["workload", "policy", "cycles (off)", "cycles (on)", "events", "chrome bytes"],
    );
    let progs: Vec<Program> = vec![
        fig3_scenario(Fig3Params::default()),
        spin_broadcast(SpinBroadcastParams::default()),
        ticket_lock(SpinlockParams::default()),
    ];
    let mut identical = true;
    let mut gated_zero = true;
    let mut events_nonzero = true;
    let mut reserve_seen = false;
    for prog in &progs {
        for policy in [Policy::def2(), Policy::def2_nack()] {
            let cfg = Config { policy, seed: 7, ..Config::default() };
            let off = CoherentMachine::new(prog, cfg).run().expect("untraced run");
            let (on, tracer) =
                CoherentMachine::with_tracer(prog, cfg, MemTracer::new()).run_traced();
            let on = on.expect("traced run");
            let (gated, silent) =
                CoherentMachine::with_tracer(prog, cfg, MemTracer::disabled()).run_traced();
            gated.expect("gated run");
            identical &= off.cycles == on.cycles && off.outcome == on.outcome;
            gated_zero &= silent.events().is_empty();
            let events = tracer.into_events();
            events_nonzero &= !events.is_empty();
            reserve_seen |= events.iter().any(|e| e.name == "reserve-set")
                && events.iter().any(|e| e.name == "counter-dec");
            let chrome = chrome_trace(&events);
            t.row(vec![
                prog.name.clone(),
                policy.name().to_string(),
                off.cycles.to_string(),
                on.cycles.to_string(),
                events.len().to_string(),
                chrome.len().to_string(),
            ]);
        }
    }
    t.check("cycles and outcome identical with the tracer on", identical);
    t.check("a disabled tracer records zero events (every call site is gated)", gated_zero);
    t.check("an enabled tracer records events on every workload", events_nonzero);
    t.check("reserve-bit and counter events appear in the sweep", reserve_seen);
    t
}

/// E13 / explorer engines: the lock-free byte-encoded explorer against
/// the frozen mutex-shard baseline ([`explore_legacy`]), on the
/// `BENCH_explore.json` shapes × {sc, tso, pso}. Semantic agreement is
/// checked on every cell; throughput (best of 7 with the engines'
/// reps interleaved so host-load phases hit both, one worker, so the
/// ratio measures per-state algorithmic cost rather than parallel
/// scaling) must clear 3x on the largest shape; and a disk-budgeted
/// run must complete a state space larger than its RAM budget with
/// identical results. Committed numbers: `BENCH_explore.json` /
/// EXPERIMENTS.md § E13.
pub fn e13_explore_engines() -> Table {
    let mut t = Table::new(
        "E13 · explorer engines — lock-free vs mutex-shard baseline",
        &["shape", "machine", "states", "legacy st/s", "lock-free st/s", "speedup", "spilled"],
    );
    fn limits() -> Limits {
        let mut l = Limits::with_threads(1);
        l.max_states = 4_000_000;
        l
    }
    /// Best-of-7 wall clock per engine, reps interleaved legacy /
    /// lock-free so a slow host phase lands on both engines instead of
    /// biasing whichever happened to run during it.
    fn cell<M: Machine>(m: &M, name: &str, prog: &Program, t: &mut Table) -> (bool, f64, usize) {
        let mut old: Option<weakord_mc::Exploration> = None;
        let mut new: Option<weakord_mc::Exploration> = None;
        for _ in 0..7 {
            let o = explore_legacy(m, prog, limits());
            if old.as_ref().is_none_or(|b| o.stats.duration < b.stats.duration) {
                old = Some(o);
            }
            let n = explore(m, prog, limits());
            if new.as_ref().is_none_or(|b| n.stats.duration < b.stats.duration) {
                new = Some(n);
            }
        }
        let (old, new) = (old.expect("seven reps"), new.expect("seven reps"));
        let old_rate = old.states as f64 / old.stats.duration.as_secs_f64();
        let new_rate = new.states as f64 / new.stats.duration.as_secs_f64();
        let agree = new == old && !new.truncated();
        let speedup = new_rate / old_rate;
        t.row(vec![
            name.to_string(),
            m.name().to_string(),
            new.states.to_string(),
            format!("{old_rate:.0}"),
            format!("{new_rate:.0}"),
            format!("{speedup:.2}x"),
            "-".to_string(),
        ]);
        (agree, speedup, new.states)
    }
    let corpus = gen::corpus(0);
    let shape = |want: &str| {
        let s = corpus.iter().find(|s| s.name == want).expect("bench shape in corpus");
        (s.name.clone(), s.program.clone())
    };
    let mut agree_all = true;
    let mut largest: (usize, f64) = (0, 0.0);
    for (name, prog) in [shape("iriw"), shape("cyc4-rw+ww+ww+ww"), shape("cyc4-ww+ww+ww+ww")] {
        for (a, speedup, states) in [
            cell(&ScMachine, &name, &prog, &mut t),
            cell(&TsoMachine, &name, &prog, &mut t),
            cell(&PsoMachine, &name, &prog, &mut t),
        ] {
            agree_all &= a;
            if states > largest.0 {
                largest = (states, speedup);
            }
        }
    }
    // The capacity row: the largest shape under a 4 MiB budget — far
    // below its ~14 MiB in-RAM footprint — must spill yet agree.
    let (name, prog) = shape("cyc4-ww+ww+ww+ww");
    let plain = explore(&PsoMachine, &prog, limits());
    let mut budgeted = limits();
    budgeted.memory_budget = Some(4 << 20);
    let spilled = explore(&PsoMachine, &prog, budgeted);
    let spill_rate = spilled.states as f64 / spilled.stats.duration.as_secs_f64();
    t.row(vec![
        name,
        "pso @ 4 MiB".to_string(),
        spilled.states.to_string(),
        "-".to_string(),
        format!("{spill_rate:.0}"),
        "-".to_string(),
        format!("{} st / {} B", spilled.stats.spilled_states, spilled.stats.spill_bytes),
    ]);
    t.check("both engines agree exactly on every shape x machine", agree_all);
    t.check("lock-free clears 3x states/sec on the largest shape", largest.1 >= 3.0);
    t.check(
        "a 4 MiB budget spills most states yet changes nothing",
        spilled == plain && spilled.stats.spilled_states > 0,
    );
    t
}

/// All experiments, in order.
pub fn all() -> Vec<Table> {
    vec![
        e1_figure1(),
        e2_figure2(),
        e3_contract(4),
        e4_figure3(),
        e5_spin(),
        e5b_structures(),
        e6_termination(5),
        e7_ablations(),
        e8_state_census(),
        e9_faults(6),
        e10_observability(),
        e13_explore_engines(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_is_cheap_and_correct() {
        let t = e2_figure2();
        assert!(t.shape_holds(), "{}", t.render());
    }

    #[test]
    fn table_rendering_is_aligned() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.check("ok", true);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("HOLDS"));
    }
}
