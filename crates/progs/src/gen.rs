//! Seeded random program generators.
//!
//! The contract experiments (E3) quantify over *programs*: weakly
//! ordered hardware must appear sequentially consistent to every DRF0
//! program. These generators produce two families:
//!
//! * [`race_free`] — programs that obey DRF0 **by construction**: every
//!   shared data location is owned by a lock, and threads only touch
//!   data inside lock-protected transactions.
//! * [`racy`] — the same skeleton, but some transactions skip the lock,
//!   injecting data races.
//!
//! Generation is deterministic in the seed, so failures reproduce.

use weakord_core::Loc;
use weakord_sim::SimRng;

use crate::ir::{Program, Reg, ThreadBuilder};

/// Shape parameters for the generators.
///
/// Defaults are sized for exhaustive exploration (small state spaces);
/// scale them up for the timed simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// Number of threads.
    pub n_procs: u16,
    /// Number of locks (synchronization locations).
    pub n_locks: u32,
    /// Number of data locations per lock.
    pub data_per_lock: u32,
    /// Lock-protected transactions per thread.
    pub transactions_per_thread: u32,
    /// Data accesses inside each transaction.
    pub accesses_per_transaction: u32,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            n_procs: 2,
            n_locks: 2,
            data_per_lock: 1,
            transactions_per_thread: 2,
            accesses_per_transaction: 2,
        }
    }
}

impl GenParams {
    /// The monitor (data-location → lock) assignment the generator's
    /// lock discipline follows — usable with
    /// `weakord_core::MonitorModel` to check executions of generated
    /// programs against the monitor synchronization model.
    pub fn monitor_map(&self) -> weakord_core::MonitorMap {
        let mut map = weakord_core::MonitorMap::new();
        for lock in 0..self.n_locks {
            for i in 0..self.data_per_lock {
                map.guard(self.data(lock, i), self.lock(lock));
            }
        }
        map
    }

    fn n_locs(&self) -> u32 {
        self.n_locks * (1 + self.data_per_lock)
    }

    fn lock(&self, l: u32) -> Loc {
        Loc::new(l)
    }

    fn data(&self, lock: u32, i: u32) -> Loc {
        Loc::new(self.n_locks + lock * self.data_per_lock + i)
    }
}

/// Generates a program that obeys DRF0 by construction: each thread runs
/// `transactions_per_thread` transactions, each acquiring a random lock
/// with a TestAndSet spin, performing random reads/writes of that lock's
/// data, and releasing with a synchronization write.
pub fn race_free(seed: u64, params: GenParams) -> Program {
    build(seed, params, 0.0)
}

/// Like [`race_free`] but each transaction skips its lock with
/// probability `race_prob` (default builders use 0.6), producing data
/// races while keeping the same access skeleton.
pub fn racy(seed: u64, params: GenParams) -> Program {
    build(seed, params, 0.6)
}

fn build(seed: u64, params: GenParams, race_prob: f64) -> Program {
    assert!(params.n_locks > 0, "generator needs at least one lock");
    assert!(params.data_per_lock > 0, "generator needs data locations");
    let mut rng = SimRng::new(seed);
    let r_lock = Reg::new(0);
    let r_tmp = Reg::new(1);
    let mut threads = Vec::with_capacity(params.n_procs as usize);
    let mut any_unlocked = false;
    for _ in 0..params.n_procs {
        let mut t = ThreadBuilder::new();
        for _ in 0..params.transactions_per_thread {
            let lock = rng.range(0..=u64::from(params.n_locks) - 1) as u32;
            let unlocked = rng.chance(race_prob);
            any_unlocked |= unlocked;
            if !unlocked {
                // Acquire: spin TestAndSet until it returns 0 (free).
                let attempt = t.here();
                t.test_and_set(r_lock, params.lock(lock));
                t.branch_non_zero(r_lock, attempt);
            }
            for _ in 0..params.accesses_per_transaction {
                let d =
                    params.data(lock, rng.range(0..=u64::from(params.data_per_lock) - 1) as u32);
                if rng.chance(0.5) {
                    t.read(r_tmp, d);
                } else {
                    let v = rng.range(1..=3u64);
                    t.write(d, v);
                }
            }
            if !unlocked {
                // Release.
                t.sync_write(params.lock(lock), 0u64);
            }
        }
        t.halt();
        threads.push(t.finish());
    }
    let name = if race_prob > 0.0 && any_unlocked {
        format!("racy-{seed}")
    } else {
        format!("race-free-{seed}")
    };
    Program::new(name, threads, params.n_locs()).expect("generated program is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let p = GenParams::default();
        assert_eq!(race_free(7, p), race_free(7, p));
        assert_eq!(racy(7, p), racy(7, p));
        assert_ne!(race_free(7, p).threads, race_free(8, p).threads);
    }

    #[test]
    fn generated_programs_validate() {
        for seed in 0..20 {
            race_free(seed, GenParams::default()).validate().unwrap();
            racy(seed, GenParams::default()).validate().unwrap();
        }
    }

    #[test]
    fn race_free_programs_contain_lock_protocol() {
        let p = race_free(3, GenParams::default());
        // Every thread with a data access also has a TestAndSet and a
        // sync release.
        for t in &p.threads {
            let has_data = t.instrs.iter().any(|i| {
                matches!(i, crate::ir::Instr::Read { .. } | crate::ir::Instr::Write { .. })
            });
            let has_acquire =
                t.instrs.iter().any(|i| matches!(i, crate::ir::Instr::SyncRmw { .. }));
            let has_release =
                t.instrs.iter().any(|i| matches!(i, crate::ir::Instr::SyncWrite { .. }));
            if has_data {
                assert!(has_acquire && has_release);
            }
        }
    }

    #[test]
    fn scaling_parameters_scale_locations() {
        let p = GenParams { n_locks: 3, data_per_lock: 2, ..GenParams::default() };
        assert_eq!(race_free(0, p).n_locs, 9);
    }
}
