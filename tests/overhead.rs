//! Zero-overhead-when-disabled, enforced with a counting allocator.
//!
//! The tracing layer promises that the default no-op tracer costs
//! nothing on the message hot path: the generic `CoherentMachine<_, T>`
//! monomorphizes `NoopTracer` calls away, and every recording call
//! site is gated on `tracer.enabled()`. This binary swaps in a global
//! allocator that counts allocations and checks the promise directly:
//! a run with a *disabled* recording tracer must allocate exactly as
//! much as a run with the no-op tracer — the instrumentation may not
//! allocate a single event when capture is off.
//!
//! Everything lives in one `#[test]` because the counter is global and
//! the libtest harness runs tests on multiple threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use weakord::coherence::{CoherentMachine, Config, Policy};
use weakord::obs::MemTracer;
use weakord::progs::workloads::{fig3_scenario, ticket_lock, Fig3Params, SpinlockParams};
use weakord::progs::Program;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many allocations it performed.
///
/// The counter is process-global, so allocations from libtest harness
/// threads running concurrently can inflate a sample; callers that
/// compare counts take the minimum over several runs (the machine is
/// deterministic and the noise only ever adds).
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

const SAMPLES: u32 = 5;

fn run_noop(prog: &Program, cfg: Config) -> u64 {
    (0..SAMPLES)
        .map(|_| {
            let (n, r) = allocs_during(|| CoherentMachine::new(prog, cfg).run());
            r.expect("run terminates");
            n
        })
        .min()
        .unwrap()
}

fn run_gated(prog: &Program, cfg: Config) -> u64 {
    // A recording tracer with capture switched off: every `enabled()`
    // gate in the machine must short-circuit before building an event.
    (0..SAMPLES)
        .map(|_| {
            let (n, r) = allocs_during(|| {
                CoherentMachine::with_tracer(prog, cfg, MemTracer::disabled()).run_traced().0
            });
            r.expect("run terminates");
            n
        })
        .min()
        .unwrap()
}

fn run_recording(prog: &Program, cfg: Config) -> (u64, usize) {
    let (n, (r, tracer)) =
        allocs_during(|| CoherentMachine::with_tracer(prog, cfg, MemTracer::new()).run_traced());
    r.expect("run terminates");
    (n, tracer.into_events().len())
}

#[test]
fn disabled_tracing_allocates_nothing_extra() {
    let workloads: Vec<Program> =
        vec![fig3_scenario(Fig3Params::default()), ticket_lock(SpinlockParams::default())];
    for prog in &workloads {
        let cfg = Config { policy: Policy::def2(), seed: 7, ..Config::default() };
        // Warm up once so lazily initialized runtime structures don't
        // bias the first measurement.
        run_noop(prog, cfg);

        let baseline_a = run_noop(prog, cfg);
        let baseline_b = run_noop(prog, cfg);
        assert_eq!(
            baseline_a, baseline_b,
            "{}: the untraced machine should allocate deterministically",
            prog.name
        );

        let gated = run_gated(prog, cfg);
        assert_eq!(
            gated, baseline_a,
            "{}: a disabled tracer must allocate exactly like the no-op tracer \
             (an empty Vec is allocation-free; any extra is an ungated event site)",
            prog.name
        );

        let (recording, events) = run_recording(prog, cfg);
        assert!(events > 0, "{}: the recording run captured nothing", prog.name);
        assert!(
            recording > gated,
            "{}: recording {events} events should visibly allocate",
            prog.name
        );
    }
}
