//! The storage fault battery: the daemon's durable-state contract
//! under a misbehaving disk.
//!
//! * **Inertness** — a daemon on an all-faults-disabled `FaultVfs`
//!   produces byte-identical result files to one on `RealVfs`.
//! * **Crash-point matrix** — for every durable write op in the
//!   journal→run→checkpoint→result lifecycle, a daemon whose disk
//!   dies exactly there (losing the op's unsynced tail) restarts into
//!   byte-identical results or a clean re-run: no wedged daemon, no
//!   silently-empty result, no corrupt cache hit.
//! * **Disk-full degradation** — ENOSPC on the accept path sheds
//!   explicitly with a `retry_after_ms` hint; ENOSPC on checkpoint
//!   writes degrades the run to RAM-only checkpointing; ENOSPC on a
//!   result write neither caches nor poisons the job, which completes
//!   byte-identically once space returns.
//! * **Startup scrub** — corrupt artifacts are quarantined with a
//!   structured report and zero recoverable jobs are lost.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use weakord_progs::{litmus, unparse_program};
use weakord_serve::{
    job_identity, Client, FaultVfs, JobSpec, ServeConfig, Server, StoreFaultPlan, SubmitKind,
    CLASS_CKPT, CLASS_JOURNAL, CLASS_RESULT,
};

/// The job mix every test drives: two small, fast explorations on
/// different machines, so the lifecycle has journals, several
/// checkpoint autosaves each, and two result writes.
const JOBS: &[(&str, &str, usize)] = &[("mp", "sc", 2_000), ("lb", "tso", 2_000)];

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("weakord-stfault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg_for(dir: PathBuf) -> ServeConfig {
    ServeConfig {
        state_dir: dir,
        workers: 2,
        max_queue: 8,
        ckpt_every: 200,
        test_hooks: true,
        ..ServeConfig::default()
    }
}

fn spec_for(litmus_name: &str, machine: &str, max_states: usize) -> JobSpec {
    let lit = litmus::all().into_iter().find(|l| l.name == litmus_name).unwrap();
    JobSpec {
        machine: machine.to_string(),
        program: unparse_program(&lit.program),
        max_states,
        deadline_ms: None,
        reduce: false,
        test_panics: 0,
        test_sleep_ms: 0,
    }
}

fn submit_line(litmus_name: &str, machine: &str, max_states: usize) -> String {
    format!(
        r#"{{"op":"submit","machine":"{machine}","litmus":"{litmus_name}","max_states":{max_states}}}"#
    )
}

/// Every result file in `<dir>/results`, name → bytes.
fn results_snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let Ok(rd) = std::fs::read_dir(dir.join("results")) else { return out };
    for e in rd.filter_map(Result::ok) {
        out.insert(e.file_name().to_string_lossy().into_owned(), std::fs::read(e.path()).unwrap());
    }
    out
}

/// Submits every job in [`JOBS`] and returns each reply's kind.
fn submit_all(server: &Server) -> Vec<SubmitKind> {
    let mut client = Client::connect(server.addr()).unwrap();
    JOBS.iter().map(|(l, m, cap)| client.submit(&submit_line(l, m, *cap)).unwrap().kind).collect()
}

/// The oracle: an uninterrupted RealVfs daemon life over [`JOBS`].
fn oracle_results(tag: &str) -> BTreeMap<String, Vec<u8>> {
    let dir = fresh_dir(tag);
    let server = Server::start(cfg_for(dir.clone())).unwrap();
    for kind in submit_all(&server) {
        assert!(matches!(kind, SubmitKind::Done { .. }), "oracle job failed: {kind:?}");
    }
    server.shutdown();
    let snap = results_snapshot(&dir);
    assert_eq!(snap.len(), JOBS.len(), "oracle must finish every job");
    let _ = std::fs::remove_dir_all(&dir);
    snap
}

#[test]
fn an_inert_fault_vfs_daemon_is_byte_identical_to_real_vfs() {
    let oracle = oracle_results("inert-oracle");
    let dir = fresh_dir("inert");
    let fvfs = Arc::new(FaultVfs::new(StoreFaultPlan::none()));
    let server = Server::start_with_vfs(cfg_for(dir.clone()), fvfs.clone()).unwrap();
    for kind in submit_all(&server) {
        assert!(matches!(kind, SubmitKind::Done { .. }), "{kind:?}");
    }
    server.shutdown();
    assert_eq!(results_snapshot(&dir), oracle, "inert FaultVfs must be transparent");
    assert!(!fvfs.has_crashed());
    assert!(fvfs.write_ops() > 0, "the daemon's writes must route through the Vfs");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The tentpole acceptance property. For each sampled crash point k:
/// life A runs on a disk that dies at durable write k (that write's
/// unsynced tail is lost, every later op fails); every submit still
/// gets an explicit terminal reply (done or error — never a hang);
/// life B restarts the same state dir on a healthy disk, scrubs,
/// recovers, re-serves the same jobs, and must end with result files
/// byte-identical to the uninterrupted oracle.
#[test]
fn crash_point_matrix_restarts_to_byte_identical_results() {
    let oracle = oracle_results("matrix-oracle");

    // Measure the clean lifecycle's durable write count W on an inert
    // FaultVfs, then sample crash points across [0, W].
    let probe_dir = fresh_dir("matrix-probe");
    let probe = Arc::new(FaultVfs::new(StoreFaultPlan::none()));
    let server = Server::start_with_vfs(cfg_for(probe_dir.clone()), probe.clone()).unwrap();
    submit_all(&server);
    server.shutdown();
    let w = probe.write_ops();
    assert!(w >= 4, "lifecycle too small to be a matrix: {w} writes");
    let _ = std::fs::remove_dir_all(&probe_dir);

    // Always hit the first few ops (journal writes) and the last one
    // (a result write); sample the middle evenly.
    let mut points: Vec<u64> = vec![0, 1, 2, w - 1];
    let step = (w / 8).max(1);
    points.extend((3..w.saturating_sub(1)).step_by(step as usize));
    points.sort_unstable();
    points.dedup();

    for &k in &points {
        let dir = fresh_dir(&format!("matrix-{k}"));
        // Life A: the disk dies at write k.
        let fvfs = Arc::new(FaultVfs::new(StoreFaultPlan::crash_at(k)));
        let server = Server::start_with_vfs(cfg_for(dir.clone()), fvfs.clone()).unwrap();
        for kind in submit_all(&server) {
            // Explicit terminal replies only; SubmitKind::Error covers
            // journal-error replies for jobs refused by the dead disk.
            assert!(
                matches!(kind, SubmitKind::Done { .. } | SubmitKind::Error(_)),
                "crash point {k}: non-terminal reply {kind:?}"
            );
        }
        server.shutdown();

        // Life B: healthy disk, same state dir. Startup scrubs the
        // torn artifact and recovery replays surviving journals.
        let server = Server::start_with_vfs(
            cfg_for(dir.clone()),
            Arc::new(FaultVfs::new(StoreFaultPlan::none())),
        )
        .unwrap();
        for (i, kind) in submit_all(&server).into_iter().enumerate() {
            assert!(
                matches!(kind, SubmitKind::Done { .. }),
                "crash point {k}: job {i} did not complete after restart: {kind:?}"
            );
        }
        server.shutdown();

        let snap = results_snapshot(&dir);
        assert_eq!(snap, oracle, "crash point {k}: restart must converge to the oracle's bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn enospc_on_the_accept_path_sheds_explicitly_with_a_retry_hint() {
    let dir = fresh_dir("enospc-accept");
    let plan = StoreFaultPlan::with_rates(11, 0, 0, 1000, 0, CLASS_JOURNAL);
    let fvfs = Arc::new(FaultVfs::new(plan));
    let server = Server::start_with_vfs(cfg_for(dir.clone()), fvfs.clone()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let (l, m, cap) = JOBS[0];
    let reply = client.submit(&submit_line(l, m, cap)).unwrap();
    assert!(matches!(reply.kind, SubmitKind::Shed), "{reply:?}");
    assert!(reply.line.contains("\"reason\":\"disk-full\""), "{}", reply.line);
    assert!(reply.line.contains("\"retry_after_ms\":"), "{}", reply.line);

    // The shed is visible in telemetry, not just on the wire.
    let status = client.request("{\"op\":\"status\"}").unwrap();
    assert!(status.contains("\"storage.fault.enospc\":"), "{status}");
    assert!(status.contains("\"serve.jobs.shed_disk_full\":1"), "{status}");
    assert!(status.contains("\"disk_full\":true"), "{status}");

    // Space comes back: the same submission is accepted and finishes.
    fvfs.disable();
    let reply = client.submit(&submit_line(l, m, cap)).unwrap();
    assert!(matches!(reply.kind, SubmitKind::Done { .. }), "{reply:?}");
    let status = client.request("{\"op\":\"status\"}").unwrap();
    assert!(status.contains("\"disk_full\":false"), "{status}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ckpt_enospc_degrades_to_ram_only_and_still_answers_byte_identically() {
    let oracle = oracle_results("ramonly-oracle");
    let dir = fresh_dir("ramonly");
    let plan = StoreFaultPlan::with_rates(13, 0, 0, 1000, 0, CLASS_CKPT);
    let fvfs = Arc::new(FaultVfs::new(plan));
    let server = Server::start_with_vfs(cfg_for(dir.clone()), fvfs.clone()).unwrap();
    for kind in submit_all(&server) {
        assert!(matches!(kind, SubmitKind::Done { .. }), "{kind:?}");
    }
    let mut client = Client::connect(server.addr()).unwrap();
    let status = client.request("{\"op\":\"status\"}").unwrap();
    assert!(status.contains("\"ckpt_ram_only\":true"), "{status}");
    assert!(status.contains("\"storage.ckpt_skipped_no_space\":"), "{status}");
    server.shutdown();
    assert_eq!(results_snapshot(&dir), oracle, "RAM-only checkpointing must not change answers");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The ENOSPC-mid-result-write satellite: the job must not enter the
/// outcome cache, must not become a poison pill, and must complete
/// with a byte-identical result once space returns.
#[test]
fn enospc_mid_result_write_neither_caches_nor_poisons_and_completes_later() {
    let oracle = oracle_results("resultspace-oracle");
    let dir = fresh_dir("resultspace");
    let plan = StoreFaultPlan::with_rates(17, 0, 0, 1000, 0, CLASS_RESULT);
    let fvfs = Arc::new(FaultVfs::new(plan));
    let server = Server::start_with_vfs(cfg_for(dir.clone()), fvfs.clone()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let (l, m, cap) = JOBS[0];
    let spec = spec_for(l, m, cap);
    let (_, id) = job_identity(&spec, 1).unwrap();

    let reply = client.submit(&submit_line(l, m, cap)).unwrap();
    assert!(matches!(reply.kind, SubmitKind::Done { .. }), "{reply:?}");
    assert!(reply.line.contains("\"ok\":false"), "{}", reply.line);
    assert!(reply.line.contains("job-error"), "{}", reply.line);
    assert!(!reply.line.contains("poisoned"), "{}", reply.line);
    assert!(
        !dir.join("results").join(format!("{id}.json")).exists(),
        "a failed result write must not leave a result file"
    );
    assert!(
        dir.join("jobs").join(format!("{id}.json")).exists(),
        "the journal must survive a failed result write (the job re-runs)"
    );

    // Resubmission re-RUNS (no corrupt cache hit): with the disk
    // still full it fails again instead of serving a cached error.
    let reply = client.submit(&submit_line(l, m, cap)).unwrap();
    assert!(reply.line.contains("\"ok\":false"), "{}", reply.line);
    assert!(!reply.line.contains("\"cached\":true"), "{}", reply.line);

    // Space returns: same submission completes, byte-identically.
    fvfs.disable();
    let reply = client.submit(&submit_line(l, m, cap)).unwrap();
    assert!(matches!(reply.kind, SubmitKind::Done { .. }), "{reply:?}");
    assert!(reply.line.contains("\"ok\":true"), "{}", reply.line);
    server.shutdown();

    let snap = results_snapshot(&dir);
    let name = format!("{id}.json");
    assert_eq!(snap.get(&name), oracle.get(&name), "post-recovery result must match the oracle");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn startup_scrub_quarantines_corruption_and_recovers_every_intact_job() {
    let oracle = oracle_results("scrub-oracle");
    let dir = fresh_dir("scrub");
    std::fs::create_dir_all(dir.join("jobs")).unwrap();
    std::fs::create_dir_all(dir.join("results")).unwrap();

    // One intact journaled job (a SIGKILL'd accept), with a
    // bit-flipped checkpoint next to it.
    let (l, m, cap) = JOBS[0];
    let spec = spec_for(l, m, cap);
    let (_, id) = job_identity(&spec, 1).unwrap();
    std::fs::write(dir.join("jobs").join(format!("{id}.json")), spec.to_json_line()).unwrap();
    std::fs::create_dir_all(dir.join("ckpt").join(&id)).unwrap();
    std::fs::write(dir.join("ckpt").join(&id).join("weakord.ckpt"), b"WOCKPTgarbage").unwrap();
    // A torn journal, a half-written result, and a stranded temp.
    std::fs::write(dir.join("jobs/deadbeef00000000.json"), "{\"machine\":\"sc").unwrap();
    std::fs::write(dir.join("results/feedface00000000.json"), "{\"id\":\"feedf").unwrap();
    std::fs::write(dir.join("results/feedface00000000.tmp"), "{}").unwrap();

    let server = Server::start(cfg_for(dir.clone())).unwrap();
    // Recovery finishes the intact job with no client attached.
    let result_path = dir.join("results").join(format!("{id}.json"));
    let deadline = Instant::now() + Duration::from_secs(30);
    while !result_path.exists() {
        assert!(Instant::now() < deadline, "recovered job did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut client = Client::connect(server.addr()).unwrap();
    let status = client.request("{\"op\":\"status\"}").unwrap();
    assert!(status.contains("\"storage.scrub.quarantined\":4"), "{status}");
    server.shutdown();

    let name = format!("{id}.json");
    assert_eq!(
        std::fs::read(&result_path).ok().as_deref(),
        oracle.get(&name).map(Vec::as_slice),
        "the recovered job must match the oracle byte-for-byte"
    );
    // Every corrupt artifact is in quarantine, names suffixed.
    let q: Vec<String> = std::fs::read_dir(dir.join("quarantine"))
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
        .collect();
    assert_eq!(q.len(), 4, "{q:?}");
    assert!(q.iter().any(|n| n == "deadbeef00000000.json.0"), "{q:?}");
    assert!(q.iter().any(|n| n == "feedface00000000.json.0"), "{q:?}");
    assert!(q.iter().any(|n| n == "feedface00000000.tmp.0"), "{q:?}");
    assert!(q.iter().any(|n| n == &format!("{id}.weakord.ckpt.0")), "{q:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_eio_on_the_accept_path_is_absorbed_by_bounded_retry() {
    let dir = fresh_dir("eio");
    // Every write draws an EIO, but the fault is transient (at most
    // two consecutive failures), so the bounded retry always lands.
    let plan = StoreFaultPlan::with_rates(19, 0, 0, 0, 1000, CLASS_JOURNAL | CLASS_RESULT);
    let fvfs = Arc::new(FaultVfs::new(plan));
    let server = Server::start_with_vfs(cfg_for(dir.clone()), fvfs.clone()).unwrap();
    for kind in submit_all(&server) {
        assert!(matches!(kind, SubmitKind::Done { .. }), "{kind:?}");
    }
    let mut client = Client::connect(server.addr()).unwrap();
    let status = client.request("{\"op\":\"status\"}").unwrap();
    assert!(status.contains("\"storage.fault.eio\":"), "{status}");
    assert!(status.contains("\"storage.write_retries\":"), "{status}");
    server.shutdown();
    assert_eq!(results_snapshot(&dir).len(), JOBS.len());
    let _ = std::fs::remove_dir_all(&dir);
}
