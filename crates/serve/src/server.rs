//! The daemon: TCP accept loop, per-connection protocol driver, and
//! the durable state directory.
//!
//! ## State directory layout
//!
//! ```text
//! <state_dir>/
//!   jobs/<id>.json      accept journal — one line per accepted,
//!                       unfinished job (the recovery work-list)
//!   results/<id>.json   durable final result, timing-free, written
//!                       atomically (tmp + rename)
//!   ckpt/<id>/ckpt.bin  the job's exploration checkpoint while it is
//!                       in flight
//! ```
//!
//! On startup the daemon replays `jobs/` minus `results/`: every
//! accepted-but-unfinished job is requeued (resuming from its
//! checkpoint when one exists), so a SIGKILL at any point loses no
//! accepted job and every replayed job produces the byte-identical
//! result file an uninterrupted run would have written.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use crate::job;
use crate::pool::{write_atomic, Admission, Shared};
use crate::protocol::{error_line, parse_request, JobSpec, Request, MAX_LINE};
use weakord_obs::json;

/// Daemon configuration. `Default` is suitable for tests: loopback,
/// ephemeral port, and a temp-ish state dir the caller should replace.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Durable state directory (journals, results, checkpoints).
    pub state_dir: PathBuf,
    /// Pool width: how many jobs run concurrently.
    pub workers: usize,
    /// Engine threads per job (a server resource, not a client knob).
    pub job_threads: usize,
    /// Bounded admission: queued jobs past this are shed explicitly.
    pub max_queue: usize,
    /// Checkpoint cadence in admitted states, per job.
    pub ckpt_every: usize,
    /// Attempt cap: a job that panics this many times is poisoned.
    pub retry_max: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Honor the `test_panics`/`test_sleep_ms` fault-injection fields.
    pub test_hooks: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            state_dir: PathBuf::from("weakord-serve-state"),
            workers: 2,
            job_threads: 1,
            max_queue: 64,
            ckpt_every: 10_000,
            retry_max: 3,
            backoff_base_ms: 10,
            test_hooks: false,
        }
    }
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or send the `shutdown` op) for a clean drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Creates the state directory, recovers journaled jobs, binds the
    /// socket, and spawns the pool and the accept loop.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        for sub in ["jobs", "results", "ckpt"] {
            std::fs::create_dir_all(cfg.state_dir.join(sub))?;
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared::new(cfg));
        recover(&shared);
        let handles = (0..workers)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || s.worker_loop())
            })
            .collect();
        let acceptor = {
            let s = shared.clone();
            std::thread::spawn(move || accept_loop(&listener, &s))
        };
        Ok(Server { addr, shared, workers: handles, acceptor: Some(acceptor) })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client sends the `shutdown` op, then drains.
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.drain();
    }

    /// Initiates and completes a drain: running jobs suspend at their
    /// next safepoint (checkpoints + journals stay for the next life),
    /// queued jobs are resolved as `shutdown`, workers join.
    pub fn shutdown(mut self) {
        self.shared.begin_shutdown();
        // Unblock the acceptor with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        self.drain();
    }

    fn drain(&mut self) {
        self.shared.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.shared.resolve_stranded();
    }
}

/// Requeues every journaled job that has no durable result yet, in
/// filename order (deterministic recovery).
fn recover(shared: &Arc<Shared>) {
    let jobs_dir = shared.cfg.state_dir.join("jobs");
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(&jobs_dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => return,
    };
    entries.sort();
    for path in entries {
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
            continue;
        };
        if shared.result_path(&stem).exists() {
            let _ = std::fs::remove_file(&path);
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        let spec = match json::parse(&text).and_then(|v| JobSpec::from_json(&v, false)) {
            Ok(s) => s,
            Err(_) => {
                // A tampered journal is quarantined, not fatal.
                let _ = std::fs::rename(&path, path.with_extension("corrupt"));
                continue;
            }
        };
        match job::job_identity(&spec, shared.cfg.job_threads) {
            Ok((prog, id)) if id == stem => shared.requeue_recovered(id, spec, prog),
            _ => {
                let _ = std::fs::rename(&path, path.with_extension("corrupt"));
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(std::sync::atomic::Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let s = shared.clone();
        std::thread::spawn(move || {
            let _ = handle_conn(stream, &s);
        });
    }
}

/// One bounded request line, or why there isn't one.
enum Line {
    Eof,
    Text(String),
    Overlong,
    Binary,
}

/// Reads one newline-terminated line of at most [`MAX_LINE`] bytes.
/// Overlong lines are drained to the next newline so the connection
/// can resynchronize after the error reply.
fn read_line(reader: &mut BufReader<TcpStream>) -> std::io::Result<Line> {
    let mut buf = Vec::new();
    let n = reader.by_ref().take(MAX_LINE as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(Line::Eof);
    }
    if buf.len() > MAX_LINE {
        // Drain the remainder of the oversized line.
        let mut sink = Vec::new();
        while !buf.ends_with(b"\n") {
            sink.clear();
            let n = reader.by_ref().take(MAX_LINE as u64).read_until(b'\n', &mut sink)?;
            if n == 0 {
                break;
            }
            buf = sink.clone();
        }
        return Ok(Line::Overlong);
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Line::Text(s)),
        Err(_) => Ok(Line::Binary),
    }
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let line = match read_line(&mut reader)? {
            Line::Eof => return Ok(()),
            Line::Overlong => {
                shared.metrics.lock().unwrap().counter("serve.proto.errors", 1);
                writeln!(
                    writer,
                    "{}",
                    error_line("overlong", &format!("request line exceeds {MAX_LINE} bytes"))
                )?;
                continue;
            }
            Line::Binary => {
                shared.metrics.lock().unwrap().counter("serve.proto.errors", 1);
                writeln!(writer, "{}", error_line("bad-request", "request is not UTF-8"))?;
                continue;
            }
            Line::Text(s) => s,
        };
        match parse_request(&line) {
            Err(msg) => {
                shared.metrics.lock().unwrap().counter("serve.proto.errors", 1);
                writeln!(writer, "{}", error_line("bad-request", &msg))?;
            }
            Ok(Request::Ping) => writeln!(writer, "{{\"event\":\"pong\"}}")?,
            Ok(Request::Status) => writeln!(writer, "{}", status_line(shared))?,
            Ok(Request::Cancel(id)) => match shared.cancel(&id) {
                Some(what) => writeln!(
                    writer,
                    "{{\"event\":\"ok\",\"id\":\"{}\",\"detail\":\"{}\"}}",
                    json::escape(&id),
                    what
                )?,
                None => writeln!(
                    writer,
                    "{}",
                    error_line("unknown-job", &format!("no job with id `{id}`"))
                )?,
            },
            Ok(Request::Shutdown) => {
                writeln!(writer, "{{\"event\":\"ok\",\"detail\":\"draining\"}}")?;
                shared.begin_shutdown();
                // An accepted socket's local address *is* the listening
                // address — one no-op connect unblocks the acceptor so
                // `Server::wait` can return.
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
                }
                return Ok(());
            }
            Ok(Request::Submit(spec)) => handle_submit(&mut writer, shared, spec)?,
        }
    }
}

fn handle_submit(
    writer: &mut TcpStream,
    shared: &Arc<Shared>,
    spec: JobSpec,
) -> std::io::Result<()> {
    if (spec.test_panics > 0 || spec.test_sleep_ms > 0) && !shared.cfg.test_hooks {
        writeln!(
            writer,
            "{}",
            error_line("bad-request", "test hooks are disabled on this daemon (--test-hooks)")
        )?;
        return Ok(());
    }
    let (prog, id) = match job::job_identity(&spec, shared.cfg.job_threads) {
        Ok(v) => v,
        Err(msg) => {
            writeln!(writer, "{}", error_line("bad-request", &msg))?;
            return Ok(());
        }
    };
    match shared.admit(&id, &spec, &prog) {
        Admission::Cached(line) => {
            writeln!(writer, "{{\"event\":\"done\",\"cached\":true,\"result\":{line}}}")
        }
        Admission::Shed { depth } => writeln!(
            writer,
            "{{\"event\":\"shed\",\"id\":\"{id}\",\"queue_depth\":{depth},\"error\":\"admission queue is full; retry with backoff\"}}"
        ),
        Admission::Refused => {
            writeln!(writer, "{}", error_line("shutting-down", "daemon is draining"))
        }
        Admission::JournalError(e) => {
            writeln!(writer, "{}", error_line("journal-error", &e))
        }
        joined_or_accepted => {
            let joined = matches!(joined_or_accepted, Admission::Joined);
            let depth = match joined_or_accepted {
                Admission::Accepted { depth } => depth,
                _ => shared.queue_depth(),
            };
            writeln!(
                writer,
                "{{\"event\":\"accepted\",\"id\":\"{id}\",\"joined\":{joined},\"queue_depth\":{depth}}}"
            )?;
            writer.flush()?;
            let line = shared.wait_done(&id);
            writeln!(writer, "{{\"event\":\"done\",\"cached\":false,\"result\":{line}}}")
        }
    }
}

/// The `status` reply: queue/running gauges, all counters, and the
/// latency histogram's quantile summary — the JSONL form of the per-job
/// metrics stream.
fn status_line(shared: &Arc<Shared>) -> String {
    let (p50, p95, p99, count, mean) = {
        let h = shared.latency.lock().unwrap();
        let (p50, p95, p99) = h.quantile_summary();
        (p50, p95, p99, h.count(), h.mean())
    };
    let counters: String = {
        let m = shared.metrics.lock().unwrap();
        m.counters()
            .map(|(k, v)| format!("\"{}\":{v}", json::escape(k)))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "{{\"event\":\"status\",\"queue_depth\":{},\"running\":{},\"counters\":{{{counters}}},\"latency_us\":{{\"count\":{count},\"mean\":{mean:.1},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99}}}}}",
        shared.queue_depth(),
        shared.running_count(),
    )
}

/// Runs the daemon in the foreground until a client sends `shutdown`
/// — the `weakord serve` entry point. Prints the bound address to
/// stdout (load generators and CI read it to find an ephemeral port).
pub fn run(cfg: ServeConfig) -> std::io::Result<()> {
    let server = Server::start(cfg)?;
    println!("listening {}", server.addr());
    // Make the address durable too, so sibling processes (CI) can
    // find a daemon that was started with port 0.
    let addr_file = server.shared.cfg.state_dir.join("addr");
    write_atomic(&addr_file, server.addr().to_string().as_bytes())?;
    server.wait();
    Ok(())
}
