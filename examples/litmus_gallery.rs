//! Litmus gallery: every test, every machine, one table.
//!
//! Exhaustively explores the full litmus suite on each operational
//! machine model and prints whether the SC-forbidden outcome is
//! reachable — the model-checking view of the whole paper on one
//! screen. The `sc` column must be all-impossible; the weakly ordered
//! machines must be impossible exactly on the DRF0 rows.
//!
//! Run with: `cargo run --example litmus_gallery`

use weakord::mc::machines::{
    BnrMachine, CacheDelayMachine, NetReorderMachine, ScMachine, WoDef1Machine, WoDef2Machine,
    WriteBufferMachine,
};
use weakord::mc::{explore, Limits, Machine};
use weakord::progs::litmus;

fn cell<M: Machine>(machine: &M, lit: &litmus::Litmus) -> &'static str {
    let ex = explore(machine, &lit.program, Limits::default());
    if ex.has_deadlock() {
        return "DEADLOCK";
    }
    if ex.outcomes.iter().any(|o| (lit.non_sc)(o)) {
        "yes"
    } else {
        "-"
    }
}

fn main() {
    println!("Can the machine produce the SC-forbidden outcome?\n");
    println!(
        "{:<16} {:>5} {:>4} {:>4} {:>6} {:>6} {:>5} {:>6} {:>6} {:>10}",
        "litmus", "DRF0?", "sc", "wb", "net", "cache", "bnr", "def1", "def2", "def2-drf1"
    );
    for lit in litmus::all() {
        println!(
            "{:<16} {:>5} {:>4} {:>4} {:>6} {:>6} {:>5} {:>6} {:>6} {:>10}",
            lit.name,
            if lit.drf0 { "yes" } else { "no" },
            cell(&ScMachine, &lit),
            cell(&WriteBufferMachine, &lit),
            cell(&NetReorderMachine, &lit),
            cell(&CacheDelayMachine, &lit),
            cell(&BnrMachine, &lit),
            cell(&WoDef1Machine, &lit),
            cell(&WoDef2Machine::default(), &lit),
            cell(&WoDef2Machine { drf1_refined: true }, &lit),
        );
    }
    println!(
        "\nReading guide: `sc` never shows a forbidden outcome; the relaxed\n\
         machines (wb/net/cache) show them even for some DRF0 programs —\n\
         they are not weakly ordered. The def1/def2 machines show them only\n\
         on racy programs: Definition 2 holds."
    );
}
