//! E5 / Section 6: the spin pathology and the DRF1 refinement on the
//! broadcast spin and the full barrier.

#[cfg(feature = "bench")]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
#[cfg(feature = "bench")]
use std::hint::black_box;
#[cfg(feature = "bench")]
use weakord_bench::experiments;
#[cfg(feature = "bench")]
use weakord_coherence::{CoherentMachine, Config, Policy};
#[cfg(feature = "bench")]
use weakord_progs::workloads::{barrier, spin_broadcast, BarrierParams, SpinBroadcastParams};

#[cfg(feature = "bench")]
fn bench(c: &mut Criterion) {
    println!("{}", experiments::e5_spin().render());
    let mut group = c.benchmark_group("e5_spin");
    for n in [2u16, 8] {
        let prog = spin_broadcast(SpinBroadcastParams { n_spinners: n, release_after: 600 });
        for policy in [Policy::def2(), Policy::def2_drf1()] {
            group.bench_with_input(
                BenchmarkId::new(format!("broadcast/{}", policy.name()), n),
                &prog,
                |b, prog| {
                    b.iter(|| {
                        let cfg = Config { policy, seed: 5, ..Config::default() };
                        CoherentMachine::new(black_box(prog), cfg).run().expect("runs").cycles
                    })
                },
            );
        }
    }
    let prog = barrier(BarrierParams { n_procs: 4, rounds: 2, work: 40 });
    for policy in [Policy::Def1, Policy::def2(), Policy::def2_drf1()] {
        group.bench_function(format!("barrier4/{}", policy.name()), |b| {
            b.iter(|| {
                let cfg = Config { policy, seed: 5, ..Config::default() };
                CoherentMachine::new(black_box(&prog), cfg).run().expect("runs").cycles
            })
        });
    }
    group.finish();
}

#[cfg(feature = "bench")]
fn config() -> Criterion {
    // Keep full-workspace bench runs quick: the quantities of interest
    // (cycle counts, message counts) are deterministic; wall-clock
    // timing is secondary.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

#[cfg(feature = "bench")]
criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
#[cfg(feature = "bench")]
criterion_main!(benches);

/// Stub entry point for hermetic builds: the real harness needs the
/// `bench` feature (and the criterion dev-dependency it documents).
#[cfg(not(feature = "bench"))]
fn main() {
    eprintln!("bench `e5_spin` is a no-op without `--features bench`; see crates/bench/Cargo.toml");
}
