//! Load generator for the `weakord serve` daemon: writes `BENCH_serve.json`.
//!
//! Three legs against an in-process daemon (same code path as the
//! standalone binary, no socket setup flakiness):
//!
//! 1. **Latency** — concurrent clients stream distinct litmus jobs at a
//!    two-worker pool; per-submit wall time lands in a
//!    [`weakord_obs::Histogram`] and the committed p50/p95/p99 feed
//!    EXPERIMENTS.md § E14. Every job must come back `done`.
//! 2. **Streaming** — a *paired* comparison: two identical daemons,
//!    one serving plain submits and one serving `"stream": true` at a
//!    20ms progress cadence. Each client alternates submissions of the
//!    same job between the two (order flipped per iteration), so
//!    machine-level drift lands on both sides equally. The streamed
//!    side's *exact* (unbucketed) p95 must stay within 10% of the
//!    plain side's (plus a small absolute slack — see the gate), or
//!    the progress plane is perturbing the data plane.
//! 3. **Overload** — a one-worker, four-slot daemon is offered 2×
//!    its capacity in long-running jobs. The invariant under test is
//!    *explicitness*: every submission resolves to `done` or `shed`,
//!    shed count is nonzero, and `done + shed == offered` (zero silent
//!    drops, zero errors).
//!
//! Exits 1 if any leg violates its invariants.
//!
//! ```text
//! cargo run --release -p weakord-bench --bin serve_loadgen
//! ```

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use weakord_obs::Histogram;
use weakord_serve::{Client, ServeConfig, Server, SubmitKind};

/// The latency-leg job mix: (machine, litmus) pairs cycled by the
/// clients. `max_states` is offset per submission so every job has a
/// distinct id — the leg measures exploration latency, not cache hits.
const MIX: &[(&str, &str)] = &[
    ("sc", "mp"),
    ("tso", "mp"),
    ("pso", "lb"),
    ("wo-def2", "iriw"),
    ("tso", "dekker-sync"),
    ("sc", "coherence-corr"),
];

const CLIENTS: usize = 4;
const JOBS_PER_CLIENT: usize = 30;

fn state_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("weakord-loadgen-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct LatencyLeg {
    done: usize,
    cached: usize,
    failures: usize,
    hist: Histogram,
    secs: f64,
}

fn latency_leg() -> LatencyLeg {
    let cfg = ServeConfig { state_dir: state_dir("latency"), workers: 2, ..ServeConfig::default() };
    let server = Server::start(cfg).expect("latency server");
    let addr = server.addr();
    let hist = Mutex::new(Histogram::new());
    let tallies = Mutex::new((0usize, 0usize, 0usize)); // done, cached, failures
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let hist = &hist;
            let tallies = &tallies;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                for j in 0..JOBS_PER_CLIENT {
                    let (machine, litmus) = MIX[(c * JOBS_PER_CLIENT + j) % MIX.len()];
                    // Distinct cap per submission ⇒ distinct job id.
                    let cap = 50_000 + c * JOBS_PER_CLIENT + j;
                    let line = format!(
                        "{{\"op\":\"submit\",\"machine\":\"{machine}\",\"litmus\":\"{litmus}\",\"max_states\":{cap}}}"
                    );
                    let t = Instant::now();
                    let reply = client.submit(&line).expect("submit round-trips");
                    let us = t.elapsed().as_micros() as u64;
                    let mut tl = tallies.lock().unwrap();
                    match reply.kind {
                        SubmitKind::Done { cached } => {
                            tl.0 += 1;
                            if cached {
                                tl.1 += 1;
                            }
                            hist.lock().unwrap().record(us);
                        }
                        _ => tl.2 += 1,
                    }
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    server.shutdown();
    let (done, cached, failures) = *tallies.lock().unwrap();
    LatencyLeg { done, cached, failures, hist: hist.into_inner().unwrap(), secs }
}

struct PairedLeg {
    done_off: usize,
    done_on: usize,
    failures: usize,
    /// `progress` lines received across the streamed submits.
    progress_lines: usize,
    /// Exact per-submit latencies (µs), for unbucketed percentiles —
    /// the log2 histogram's ≤2× bucket error would swamp a 10% gate.
    off: Vec<u64>,
    on: Vec<u64>,
}

/// Exact percentile over the raw samples (p in (0, 100]).
fn exact_percentile(lats: &mut [u64], p: f64) -> u64 {
    assert!(!lats.is_empty());
    lats.sort_unstable();
    let rank = ((p / 100.0) * lats.len() as f64).ceil().max(1.0) as usize;
    lats[rank - 1]
}

/// The streaming comparison: two identical 2-worker daemons, one taking
/// plain submits, the other `"stream": true` at a 20ms cadence. Each
/// client submits every mix job to *both*, alternating which daemon
/// goes first per iteration — sequential-leg designs here showed 4–13%
/// p95 swings from drift alone, which pairing cancels.
fn paired_leg() -> PairedLeg {
    let cfg_off =
        ServeConfig { state_dir: state_dir("pair-off"), workers: 2, ..ServeConfig::default() };
    let cfg_on = ServeConfig {
        state_dir: state_dir("pair-on"),
        workers: 2,
        progress_every_ms: 20,
        ..ServeConfig::default()
    };
    let off_srv = Server::start(cfg_off).expect("paired off server");
    let on_srv = Server::start(cfg_on).expect("paired on server");
    let (off_addr, on_addr) = (off_srv.addr(), on_srv.addr());
    let off = Mutex::new(Vec::new());
    let on = Mutex::new(Vec::new());
    let tallies = Mutex::new((0usize, 0usize, 0usize, 0usize)); // done_off, done_on, failures, progress
    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            let (off, on, tallies) = (&off, &on, &tallies);
            s.spawn(move || {
                let mut off_client = Client::connect(off_addr).expect("off client connects");
                let mut on_client = Client::connect(on_addr).expect("on client connects");
                for j in 0..JOBS_PER_CLIENT {
                    let (machine, litmus) = MIX[(c * JOBS_PER_CLIENT + j) % MIX.len()];
                    let cap = 50_000 + c * JOBS_PER_CLIENT + j;
                    let plain = format!(
                        "{{\"op\":\"submit\",\"machine\":\"{machine}\",\"litmus\":\"{litmus}\",\"max_states\":{cap}}}"
                    );
                    let streamed = format!(
                        "{{\"op\":\"submit\",\"machine\":\"{machine}\",\"litmus\":\"{litmus}\",\"max_states\":{cap},\"stream\":true}}"
                    );
                    let mut one = |client: &mut Client, line: &str, lats: &Mutex<Vec<u64>>| {
                        let t = Instant::now();
                        let reply = client.submit(line).expect("submit round-trips");
                        let us = t.elapsed().as_micros() as u64;
                        let mut tl = tallies.lock().unwrap();
                        tl.3 += reply
                            .progress
                            .iter()
                            .filter(|l| l.contains("\"event\":\"progress\""))
                            .count();
                        if matches!(reply.kind, SubmitKind::Done { .. }) {
                            lats.lock().unwrap().push(us);
                            true
                        } else {
                            tl.2 += 1;
                            false
                        }
                    };
                    // Alternate which side goes first so ordering bias
                    // (first submit pays any cold-path cost) cancels.
                    let (did_off, did_on) = if j % 2 == 0 {
                        let a = one(&mut off_client, &plain, off);
                        let b = one(&mut on_client, &streamed, on);
                        (a, b)
                    } else {
                        let b = one(&mut on_client, &streamed, on);
                        let a = one(&mut off_client, &plain, off);
                        (a, b)
                    };
                    let mut tl = tallies.lock().unwrap();
                    tl.0 += did_off as usize;
                    tl.1 += did_on as usize;
                }
            });
        }
    });
    off_srv.shutdown();
    on_srv.shutdown();
    let (done_off, done_on, failures, progress_lines) = *tallies.lock().unwrap();
    PairedLeg {
        done_off,
        done_on,
        failures,
        progress_lines,
        off: off.into_inner().unwrap(),
        on: on.into_inner().unwrap(),
    }
}

struct OverloadLeg {
    workers: usize,
    max_queue: usize,
    offered: usize,
    done: usize,
    shed: usize,
    errors: usize,
}

fn overload_leg() -> OverloadLeg {
    let (workers, max_queue) = (1usize, 4usize);
    let cfg = ServeConfig {
        state_dir: state_dir("overload"),
        workers,
        max_queue,
        test_hooks: true,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("overload server");
    let addr = server.addr();
    // 2× capacity: the pool can hold (workers + max_queue) jobs, offer
    // twice that in one concurrent burst of slow (300 ms) jobs.
    let offered = 2 * (workers + max_queue);
    let tallies = Mutex::new((0usize, 0usize, 0usize)); // done, shed, errors
    std::thread::scope(|s| {
        for i in 0..offered {
            let tallies = &tallies;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let line = format!(
                    "{{\"op\":\"submit\",\"machine\":\"sc\",\"litmus\":\"mp\",\"max_states\":{},\"test_sleep_ms\":300}}",
                    10_000 + i
                );
                let reply = client.submit(&line).expect("submit round-trips");
                let mut tl = tallies.lock().unwrap();
                match reply.kind {
                    SubmitKind::Done { .. } => tl.0 += 1,
                    SubmitKind::Shed => tl.1 += 1,
                    SubmitKind::Error(_) => tl.2 += 1,
                }
            });
        }
    });
    server.shutdown();
    let (done, shed, errors) = *tallies.lock().unwrap();
    OverloadLeg { workers, max_queue, offered, done, shed, errors }
}

fn main() {
    eprintln!("latency leg: {CLIENTS} clients × {JOBS_PER_CLIENT} jobs, 2 workers…");
    let lat = latency_leg();
    eprintln!("streaming leg: paired plain vs \"stream\":true at a 20ms cadence…");
    let mut stm = paired_leg();
    eprintln!("overload leg: 2× capacity burst at a 1-worker, 4-slot pool…");
    let ovl = overload_leg();

    let (p50, p95, p99) = lat.hist.quantile_summary();
    let (off_p50, off_p95, off_p99) = (
        exact_percentile(&mut stm.off, 50.0),
        exact_percentile(&mut stm.off, 95.0),
        exact_percentile(&mut stm.off, 99.0),
    );
    let (on_p50, on_p95, on_p99) = (
        exact_percentile(&mut stm.on, 50.0),
        exact_percentile(&mut stm.on, 95.0),
        exact_percentile(&mut stm.on, 99.0),
    );
    let overhead_pct = (on_p95 as f64 / off_p95 as f64 - 1.0) * 100.0;
    let silent = ovl.offered - ovl.done - ovl.shed - ovl.errors;
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"serve-loadgen\",\n");
    let _ = writeln!(
        out,
        "  \"latency\": {{\"clients\": {CLIENTS}, \"jobs\": {}, \"workers\": 2, \"done\": {}, \"cached\": {}, \"failures\": {}, \"mean_us\": {:.0}, \"p50_us\": {p50}, \"p95_us\": {p95}, \"p99_us\": {p99}, \"throughput_jobs_per_sec\": {:.1}}},",
        CLIENTS * JOBS_PER_CLIENT,
        lat.done,
        lat.cached,
        lat.failures,
        lat.hist.mean(),
        lat.done as f64 / lat.secs,
    );
    let _ = writeln!(
        out,
        "  \"streaming\": {{\"progress_every_ms\": 20, \"done_off\": {}, \"done_on\": {}, \"progress_lines\": {}, \"off_p50_us\": {off_p50}, \"off_p95_us\": {off_p95}, \"off_p99_us\": {off_p99}, \"on_p50_us\": {on_p50}, \"on_p95_us\": {on_p95}, \"on_p99_us\": {on_p99}, \"overhead_p95_pct\": {overhead_pct:.1}}},",
        stm.done_off, stm.done_on, stm.progress_lines,
    );
    let _ = writeln!(
        out,
        "  \"overload\": {{\"workers\": {}, \"max_queue\": {}, \"offered\": {}, \"done\": {}, \"shed\": {}, \"errors\": {}, \"silent_drops\": {silent}}}",
        ovl.workers, ovl.max_queue, ovl.offered, ovl.done, ovl.shed, ovl.errors,
    );
    out.push_str("}\n");
    std::fs::write("BENCH_serve.json", &out).expect("write BENCH_serve.json");
    println!("{out}");

    let mut failed = false;
    if lat.failures > 0 || lat.done != CLIENTS * JOBS_PER_CLIENT {
        eprintln!("FAIL: latency leg lost jobs ({} done, {} failures)", lat.done, lat.failures);
        failed = true;
    }
    let expected = CLIENTS * JOBS_PER_CLIENT;
    if stm.failures > 0 || stm.done_off != expected || stm.done_on != expected {
        eprintln!(
            "FAIL: streaming leg lost jobs ({}/{} off done, {}/{} on done, {} failures)",
            stm.done_off, expected, stm.done_on, expected, stm.failures
        );
        failed = true;
    }
    if stm.progress_lines == 0 {
        eprintln!("FAIL: streaming leg saw no progress lines — stream flag is inert");
        failed = true;
    }
    // The streamed p95 must stay within 10% of the plain p95. A 5 ms
    // absolute slack deflakes the gate on short mixes: with sub-10ms
    // medians, scheduler jitter alone can move an exact p95 by more
    // than 10% between two otherwise identical runs.
    if on_p95 as f64 > off_p95 as f64 * 1.10 + 5_000.0 {
        eprintln!(
            "FAIL: streaming overhead on p95 is {overhead_pct:.1}% ({on_p95} µs vs {off_p95} µs) — \
             progress emission is perturbing the data plane"
        );
        failed = true;
    }
    if ovl.shed == 0 {
        eprintln!("FAIL: overload leg shed nothing — backpressure never engaged");
        failed = true;
    }
    if silent != 0 || ovl.errors != 0 {
        eprintln!(
            "FAIL: overload leg was not explicit ({silent} silent drops, {} errors)",
            ovl.errors
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "ok: p50 {p50} µs, p95 {p95} µs, p99 {p99} µs; streaming p95 {on_p95} µs ({overhead_pct:+.1}%, {} lines); overload {}/{} done, {} shed, 0 silent",
        stm.progress_lines, ovl.done, ovl.offered, ovl.shed
    );
}
