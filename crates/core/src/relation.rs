//! Dense binary relations over operation ids.
//!
//! The formal machinery of the paper is phrased in terms of relations:
//! program order, synchronization order, their transitive closure
//! (happens-before), and *consistency* of two relations ("A and B are
//! consistent if and only if A ∪ B can be extended to a total ordering",
//! footnote 6, after Shasha & Snir). [`Relation`] provides those
//! operations on a dense bit-matrix representation, suitable for the
//! litmus-scale executions we cross-check against the vector-clock
//! engine in [`crate::hb`].

use crate::ids::OpId;

const WORD: usize = 64;

/// A binary relation over `n` operation ids, stored as an `n × n`
/// bit matrix.
///
/// # Examples
///
/// ```
/// use weakord_core::{OpId, Relation};
/// let mut r = Relation::new(3);
/// r.add(OpId::new(0), OpId::new(1));
/// r.add(OpId::new(1), OpId::new(2));
/// let closed = r.transitive_closure();
/// assert!(closed.contains(OpId::new(0), OpId::new(2)));
/// assert!(closed.is_acyclic());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Relation {
    /// Creates an empty relation over `n` elements.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(WORD).max(1);
        Relation { n, words_per_row, bits: vec![0; n * words_per_row] }
    }

    /// Number of elements in the carrier set.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the carrier set is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    fn row(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    fn row_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Adds the pair `(a, b)` to the relation.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add(&mut self, a: OpId, b: OpId) {
        assert!(a.index() < self.n && b.index() < self.n, "Relation::add: id out of range");
        self.row_mut(a.index())[b.index() / WORD] |= 1 << (b.index() % WORD);
    }

    /// Tests membership of the pair `(a, b)`.
    pub fn contains(&self, a: OpId, b: OpId) -> bool {
        if a.index() >= self.n || b.index() >= self.n {
            return false;
        }
        self.row(a.index())[b.index() / WORD] & (1 << (b.index() % WORD)) != 0
    }

    /// Returns the union of this relation and `other`.
    ///
    /// # Panics
    ///
    /// Panics if the carrier sizes differ.
    #[must_use]
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.n, other.n, "Relation::union: size mismatch");
        let mut out = self.clone();
        for (w, o) in out.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
        out
    }

    /// Computes the (irreflexive-input preserving) transitive closure
    /// using a bit-parallel Floyd–Warshall: for each intermediate `k`,
    /// every row that reaches `k` absorbs row `k`.
    #[must_use]
    pub fn transitive_closure(&self) -> Relation {
        let mut out = self.clone();
        let wpr = out.words_per_row;
        for k in 0..out.n {
            let (kw, kb) = (k / WORD, 1u64 << (k % WORD));
            // Copy row k out to satisfy the borrow checker.
            let krow: Vec<u64> = out.row(k).to_vec();
            for i in 0..out.n {
                let base = i * wpr;
                if out.bits[base + kw] & kb != 0 {
                    for (j, &kwj) in krow.iter().enumerate() {
                        out.bits[base + j] |= kwj;
                    }
                }
            }
        }
        out
    }

    /// Returns `true` if the relation (viewed as a digraph) has no cycle.
    ///
    /// A reflexive pair `(a, a)` counts as a cycle.
    pub fn is_acyclic(&self) -> bool {
        let closed = self.transitive_closure();
        (0..self.n).all(|i| !closed.contains(OpId::new(i as u32), OpId::new(i as u32)))
    }

    /// Returns `true` if this relation and `other` are *consistent*:
    /// their union can be extended to a total order, i.e. the union is
    /// acyclic (footnote 6 of the paper, after Shasha & Snir).
    pub fn consistent_with(&self, other: &Relation) -> bool {
        self.union(other).is_acyclic()
    }

    /// Produces some topological order of the carrier set consistent with
    /// the relation, or `None` if the relation is cyclic (a reflexive
    /// pair counts as a cycle, consistently with
    /// [`Relation::is_acyclic`]).
    #[allow(clippy::needless_range_loop)] // a..b pairs index the bit matrix
    pub fn topological_order(&self) -> Option<Vec<OpId>> {
        if (0..self.n).any(|i| self.contains(OpId::new(i as u32), OpId::new(i as u32))) {
            return None;
        }
        let mut indeg = vec![0usize; self.n];
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b && self.contains(OpId::new(a as u32), OpId::new(b as u32)) {
                    indeg[b] += 1;
                }
            }
        }
        let mut stack: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        // Pop smallest-first for determinism.
        stack.sort_unstable_by(|a, b| b.cmp(a));
        let mut out = Vec::with_capacity(self.n);
        while let Some(a) = stack.pop() {
            out.push(OpId::new(a as u32));
            for b in 0..self.n {
                if a != b && self.contains(OpId::new(a as u32), OpId::new(b as u32)) {
                    indeg[b] -= 1;
                    if indeg[b] == 0 {
                        stack.push(b);
                    }
                }
            }
            stack.sort_unstable_by(|a, b| b.cmp(a));
        }
        (out.len() == self.n).then_some(out)
    }

    /// Iterates over all pairs in the relation.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, OpId)> + '_ {
        (0..self.n).flat_map(move |a| {
            (0..self.n).filter_map(move |b| {
                self.contains(OpId::new(a as u32), OpId::new(b as u32))
                    .then_some((OpId::new(a as u32), OpId::new(b as u32)))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> OpId {
        OpId::new(i)
    }

    #[test]
    fn add_and_contains() {
        let mut r = Relation::new(4);
        assert!(!r.contains(id(0), id(1)));
        r.add(id(0), id(1));
        assert!(r.contains(id(0), id(1)));
        assert!(!r.contains(id(1), id(0)));
    }

    #[test]
    fn closure_chains() {
        let mut r = Relation::new(5);
        for i in 0..4 {
            r.add(id(i), id(i + 1));
        }
        let c = r.transitive_closure();
        assert!(c.contains(id(0), id(4)));
        assert!(!c.contains(id(4), id(0)));
        assert!(c.is_acyclic());
    }

    #[test]
    fn closure_on_wide_relation_crosses_word_boundary() {
        // 130 elements: three u64 words per row.
        let n = 130;
        let mut r = Relation::new(n);
        for i in 0..(n - 1) as u32 {
            r.add(id(i), id(i + 1));
        }
        let c = r.transitive_closure();
        assert!(c.contains(id(0), id((n - 1) as u32)));
        assert!(c.is_acyclic());
    }

    #[test]
    fn cycle_detection() {
        let mut r = Relation::new(3);
        r.add(id(0), id(1));
        r.add(id(1), id(2));
        r.add(id(2), id(0));
        assert!(!r.is_acyclic());
        assert!(r.topological_order().is_none());
    }

    #[test]
    fn reflexive_pair_is_a_cycle() {
        let mut r = Relation::new(2);
        r.add(id(1), id(1));
        assert!(!r.is_acyclic());
    }

    #[test]
    fn consistency_per_shasha_snir() {
        let mut a = Relation::new(2);
        a.add(id(0), id(1));
        let mut b = Relation::new(2);
        b.add(id(1), id(0));
        assert!(!a.consistent_with(&b));
        let empty = Relation::new(2);
        assert!(a.consistent_with(&empty));
    }

    #[test]
    fn union_merges_pairs() {
        let mut a = Relation::new(3);
        a.add(id(0), id(1));
        let mut b = Relation::new(3);
        b.add(id(1), id(2));
        let u = a.union(&b);
        assert!(u.contains(id(0), id(1)) && u.contains(id(1), id(2)));
        assert!(!u.contains(id(0), id(2)));
    }

    #[test]
    fn topological_order_respects_edges() {
        let mut r = Relation::new(4);
        r.add(id(3), id(1));
        r.add(id(1), id(0));
        r.add(id(3), id(2));
        let order = r.topological_order().unwrap();
        let pos = |x: OpId| order.iter().position(|&o| o == x).unwrap();
        assert!(pos(id(3)) < pos(id(1)));
        assert!(pos(id(1)) < pos(id(0)));
        assert!(pos(id(3)) < pos(id(2)));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::new(0);
        assert!(r.is_empty());
        assert!(r.is_acyclic());
        assert_eq!(r.topological_order(), Some(vec![]));
    }

    #[test]
    fn iter_lists_all_pairs() {
        let mut r = Relation::new(3);
        r.add(id(2), id(0));
        r.add(id(0), id(1));
        let pairs: Vec<_> = r.iter().collect();
        assert_eq!(pairs, vec![(id(0), id(1)), (id(2), id(0))]);
    }
}
