//! The event model: what one timeline entry is.
//!
//! Events are `Copy` and carry no heap data — two fixed numeric
//! argument slots with `&'static str` names — so recording one is a
//! handful of stores and *constructing* one on a disabled tracer path
//! costs nothing the optimizer cannot remove.

use std::fmt;

/// Which timeline an event belongs to. The Chrome exporter renders one
/// track per variant instance (one per processor, one per directory
/// bank, one per memory line, one per explorer shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A processor (core + cache controller) timeline.
    Proc(u16),
    /// A directory / memory-bank timeline.
    Dir(u16),
    /// A memory line's timeline (reserve-bit history, ownership moves).
    Line(u32),
    /// A model-checker worker/shard timeline.
    Shard(u16),
    /// The explorer's checkpoint/resume/shrink timeline (save and load
    /// spans, shrink passes).
    Ckpt,
    /// Machine-global events (watchdog, run boundaries).
    Global,
}

impl fmt::Display for Track {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Track::Proc(p) => write!(f, "P{p}"),
            Track::Dir(b) => write!(f, "dir{b}"),
            Track::Line(l) => write!(f, "line{l}"),
            Track::Shard(s) => write!(f, "shard{s}"),
            Track::Ckpt => write!(f, "ckpt"),
            Track::Global => write!(f, "global"),
        }
    }
}

/// The temporal shape of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A point event at [`Event::at`].
    Instant,
    /// A span of `dur` cycles starting at [`Event::at`] (message
    /// lifetimes: send → deliver).
    Complete {
        /// Span length in cycles.
        dur: u64,
    },
    /// A sampled counter value (rendered as a graph track in Perfetto —
    /// the per-processor outstanding-access counter uses this).
    Counter {
        /// The counter reading at [`Event::at`].
        value: i64,
    },
}

/// One timestamped, track-attributed trace event.
///
/// `cat` groups events by subsystem (`"net"`, `"fault"`, `"cache"`,
/// `"dir"`, `"core"`, `"mc"`); `name` is the specific event. Up to two
/// numeric arguments ride along; a slot with an empty name is unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in simulation cycles (explorer events use their own
    /// discrete progress counter).
    pub at: u64,
    /// The timeline this event belongs to.
    pub track: Track,
    /// Instant, span, or counter sample.
    pub phase: Phase,
    /// Subsystem category.
    pub cat: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Two optional numeric arguments; `("", _)` marks an unused slot.
    pub args: [(&'static str, i64); 2],
}

impl Event {
    /// A point event.
    pub fn instant(at: u64, track: Track, cat: &'static str, name: &'static str) -> Self {
        Event { at, track, phase: Phase::Instant, cat, name, args: [("", 0), ("", 0)] }
    }

    /// A span of `dur` cycles starting at `at`.
    pub fn span(at: u64, dur: u64, track: Track, cat: &'static str, name: &'static str) -> Self {
        Event { at, track, phase: Phase::Complete { dur }, cat, name, args: [("", 0), ("", 0)] }
    }

    /// A counter sample.
    pub fn counter(
        at: u64,
        track: Track,
        cat: &'static str,
        name: &'static str,
        value: i64,
    ) -> Self {
        Event { at, track, phase: Phase::Counter { value }, cat, name, args: [("", 0), ("", 0)] }
    }

    /// Attaches a numeric argument (first free slot; a third argument is
    /// silently dropped — events are fixed-size by design).
    #[must_use]
    pub fn arg(mut self, name: &'static str, value: i64) -> Self {
        for slot in &mut self.args {
            if slot.0.is_empty() {
                *slot = (name, value);
                return self;
            }
        }
        self
    }

    /// Iterates over the used argument slots.
    pub fn used_args(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.args.iter().copied().filter(|(n, _)| !n.is_empty())
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {:<7} {}:{}", self.at, self.track.to_string(), self.cat, self.name)?;
        if let Phase::Complete { dur } = self.phase {
            write!(f, " dur={dur}")?;
        }
        if let Phase::Counter { value } = self.phase {
            write!(f, " value={value}")?;
        }
        for (n, v) in self.used_args() {
            write!(f, " {n}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_fill_in_order_and_overflow_is_dropped() {
        let e = Event::instant(3, Track::Proc(1), "cache", "commit")
            .arg("loc", 4)
            .arg("value", 7)
            .arg("dropped", 9);
        let used: Vec<_> = e.used_args().collect();
        assert_eq!(used, vec![("loc", 4), ("value", 7)]);
    }

    #[test]
    fn display_names_the_track_and_args() {
        let e = Event::span(10, 25, Track::Dir(0), "net", "GetX").arg("loc", 1);
        let s = e.to_string();
        assert!(s.contains("dir0"), "{s}");
        assert!(s.contains("net:GetX"), "{s}");
        assert!(s.contains("dur=25"), "{s}");
        assert!(s.contains("loc=1"), "{s}");
    }
}
