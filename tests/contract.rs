//! The headline theorem, end to end: Definition 2 holds for the weak
//! ordering machines with respect to DRF0 (Appendix B), fails for the
//! sync-oblivious relaxed machines, and the Section 5 implementation is
//! strictly more permissive than Definition 1 hardware on racy code.

use weakord::core::HbMode;
use weakord::mc::machines::{
    CacheDelayMachine, NetReorderMachine, PsoMachine, ScMachine, TsoMachine, WoDef1Machine,
    WoDef2Machine, WriteBufferMachine,
};
use weakord::mc::{
    appears_sc, check_program_drf, check_weak_ordering, explore, Limits, TraceLimits,
};
use weakord::progs::{gen, litmus, Program};

fn suite() -> Vec<Program> {
    let mut programs: Vec<Program> = litmus::all().into_iter().map(|l| l.program).collect();
    for seed in 0..6 {
        programs.push(gen::race_free(seed, gen::GenParams::default()));
        programs.push(gen::racy(seed, gen::GenParams::default()));
    }
    programs
}

#[test]
fn weak_ordering_machines_satisfy_definition_2_wrt_drf0() {
    let programs = suite();
    for report in [
        check_weak_ordering(
            &WoDef1Machine,
            HbMode::Drf0,
            &programs,
            Limits::default(),
            TraceLimits::default(),
        ),
        check_weak_ordering(
            &WoDef2Machine::default(),
            HbMode::Drf0,
            &programs,
            Limits::default(),
            TraceLimits::default(),
        ),
        // TSO and PSO recognize Test/Set/RMW as ordering points, so
        // they are weakly ordered by Definition 2 as well.
        check_weak_ordering(
            &TsoMachine,
            HbMode::Drf0,
            &programs,
            Limits::default(),
            TraceLimits::default(),
        ),
        check_weak_ordering(
            &PsoMachine,
            HbMode::Drf0,
            &programs,
            Limits::default(),
            TraceLimits::default(),
        ),
    ] {
        assert!(report.holds(), "{report}");
    }
}

#[test]
fn refined_machine_satisfies_definition_2_wrt_drf1() {
    let programs = suite();
    let report = check_weak_ordering(
        &WoDef2Machine { drf1_refined: true },
        HbMode::Drf1,
        &programs,
        Limits::default(),
        TraceLimits::default(),
    );
    assert!(report.holds(), "{report}");
}

#[test]
fn sync_oblivious_machines_violate_the_contract() {
    // dekker-sync obeys DRF0; hardware that cannot recognize
    // synchronization breaks it.
    let programs = vec![litmus::dekker_sync().program];
    for (name, holds) in [
        (
            "write-buffer",
            check_weak_ordering(
                &WriteBufferMachine,
                HbMode::Drf0,
                &programs,
                Limits::default(),
                TraceLimits::default(),
            )
            .holds(),
        ),
        (
            "net-reorder",
            check_weak_ordering(
                &NetReorderMachine,
                HbMode::Drf0,
                &programs,
                Limits::default(),
                TraceLimits::default(),
            )
            .holds(),
        ),
        (
            "cache-delay",
            check_weak_ordering(
                &CacheDelayMachine,
                HbMode::Drf0,
                &programs,
                Limits::default(),
                TraceLimits::default(),
            )
            .holds(),
        ),
    ] {
        assert!(!holds, "{name} unexpectedly satisfies the contract");
    }
}

#[test]
fn definition_1_hardware_is_weakly_ordered_by_definition_2() {
    // Section 6's first claim: the old hardware satisfies the new
    // contract (the converse of the paper's generality argument).
    let report = check_weak_ordering(
        &WoDef1Machine,
        HbMode::Drf0,
        &suite(),
        Limits::default(),
        TraceLimits::default(),
    );
    assert!(report.holds(), "{report}");
}

#[test]
fn the_new_implementation_violates_definition_1s_observable_guarantees() {
    // racy-spy: Definition 1 hardware can never show flag=1 ∧ x=0; the
    // Section 5 implementation can — it is a legal Definition 2
    // implementation that Definition 1 does not allow (the paper's
    // generality demonstration).
    let lit = litmus::racy_spy();
    let def1 = explore(&WoDef1Machine, &lit.program, Limits::default());
    let def2 = explore(&WoDef2Machine::default(), &lit.program, Limits::default());
    assert!(def1.outcomes.iter().all(|o| !(lit.non_sc)(o)));
    assert!(def2.outcomes.iter().any(|o| (lit.non_sc)(o)));
    // And def2's outcome set strictly contains def1's.
    assert!(def1.outcomes.is_subset(&def2.outcomes));
    assert!(def1.outcomes.len() < def2.outcomes.len());
}

#[test]
fn every_machine_appears_sc_to_single_threaded_programs() {
    // Uniprocessors are sequentially consistent "almost naturally":
    // single-threaded programs admit exactly one SC result, and every
    // machine must produce it.
    use weakord::core::Loc;
    use weakord::progs::{Reg, ThreadBuilder};
    let mut t = ThreadBuilder::new();
    t.write(Loc::new(0), 3u64);
    t.read(Reg::new(0), Loc::new(0));
    t.write(Loc::new(1), Reg::new(0));
    t.test_and_set(Reg::new(1), Loc::new(2));
    t.read(Reg::new(2), Loc::new(1));
    t.halt();
    let prog = Program::new("uni", vec![t.finish()], 3).unwrap();
    macro_rules! check {
        ($m:expr) => {
            let r = appears_sc(&$m, &prog, Limits::default());
            assert!(r.appears_sc, "{}: {r}", weakord::mc::Machine::name(&$m));
            assert_eq!(r.machine.outcomes.len(), 1);
        };
    }
    check!(ScMachine);
    check!(WriteBufferMachine);
    check!(TsoMachine);
    check!(PsoMachine);
    check!(NetReorderMachine);
    check!(CacheDelayMachine);
    check!(WoDef1Machine);
    check!(WoDef2Machine::default());
}

#[test]
fn drf0_classification_is_stable_between_detector_runs() {
    for seed in 0..6 {
        let prog = gen::racy(seed, gen::GenParams::default());
        let a = check_program_drf(&prog, HbMode::Drf0, TraceLimits::default());
        let b = check_program_drf(&prog, HbMode::Drf0, TraceLimits::default());
        assert_eq!(a.is_race_free(), b.is_race_free());
        assert_eq!(a.races, b.races);
    }
}

// ---------------------------------------------------------------------
// The machine × machine containment grid over the generated corpus.
// ---------------------------------------------------------------------

/// The grid machines, strongest first. Index order matches
/// [`EXPECTED_SUBSET`].
const GRID: [&str; 5] = ["sc", "write-buffer", "tso", "pso", "wo-def2"];

/// `EXPECTED_SUBSET[i][j]`: does `outcomes(GRID[i]) ⊆ outcomes(GRID[j])`
/// hold on every corpus shape? This is the *true* containment lattice
/// of the repo's machines, checked cell by cell:
///
/// * `SC ⊆ TSO ⊆ PSO` — each buffer refinement only adds behaviours.
/// * `TSO ⊆ write-buffer` — TSO is the write buffer plus *more*
///   ordering (sync accesses drain; on all-data programs they agree).
/// * `TSO ⊆ WO` — everything TSO relaxes (data W→R) the caches relax
///   too, and both serialize writes in program order.
/// * `PSO` and `WO` are **incomparable**, not a chain: PSO reorders
///   data W→W into memory but is multi-copy atomic (one memory array),
///   while the cache substrate commits writes in program order but
///   lets readers see stale copies. `2+2w` separates them one way
///   (PSO-weak, WO-SC), `iriw` the other (WO-weak, PSO-SC).
/// * The sync-oblivious write buffer sits outside every sync-honoring
///   machine (`sb+sync` is weak on it and SC on them).
const EXPECTED_SUBSET: [[bool; 5]; 5] = [
    [true, true, true, true, true],     // sc
    [false, true, false, false, false], // write-buffer
    [false, true, true, true, true],    // tso
    [false, false, false, true, false], // pso
    [false, false, false, false, true], // wo-def2
];

fn grid_outcome_sets(prog: &Program) -> [std::collections::BTreeSet<weakord::progs::Outcome>; 5] {
    use weakord::mc::explore_reduced;
    let run = |ex: weakord::mc::Exploration| {
        assert!(ex.truncation.is_none(), "{} truncated", prog.name);
        ex.outcomes
    };
    [
        run(explore_reduced(&ScMachine, prog, Limits::default())),
        run(explore_reduced(&WriteBufferMachine, prog, Limits::default())),
        run(explore_reduced(&TsoMachine, prog, Limits::default())),
        run(explore_reduced(&PsoMachine, prog, Limits::default())),
        run(explore_reduced(&WoDef2Machine::default(), prog, Limits::default())),
    ]
}

/// Shortest trace on machine `idx` reaching `outcome`, for failure
/// messages.
fn grid_witness(idx: usize, prog: &Program, outcome: &weakord::progs::Outcome) -> String {
    use weakord::mc::find_witness;
    let target = outcome.clone();
    let w = match idx {
        0 => find_witness(&ScMachine, prog, Limits::default(), |o| *o == target),
        1 => find_witness(&WriteBufferMachine, prog, Limits::default(), |o| *o == target),
        2 => find_witness(&TsoMachine, prog, Limits::default(), |o| *o == target),
        3 => find_witness(&PsoMachine, prog, Limits::default(), |o| *o == target),
        _ => find_witness(&WoDef2Machine::default(), prog, Limits::default(), |o| *o == target),
    };
    match w {
        None => "  <no witness found>".to_string(),
        Some(labels) => labels.iter().map(|l| format!("  {l}")).collect::<Vec<_>>().join("\n"),
    }
}

/// Every ordered machine pair × every corpus shape: the observed
/// outcome-set relation matches [`EXPECTED_SUBSET`], with a named
/// witness trace whenever an expected containment breaks, and a named
/// separator shape certifying every expected *non*-containment and the
/// strictness of every expected containment.
#[test]
fn containment_grid_holds_on_the_full_corpus() {
    let shapes = gen::corpus(0);
    assert!(shapes.len() >= 200, "corpus shrank to {} shapes", shapes.len());
    // separators[i][j]: first shape where i ⊄ j (an outcome of i that j
    // lacks). strict[i][j]: first shape where i ⊊ j.
    let mut separators: [[Option<String>; 5]; 5] = Default::default();
    let mut strict: [[Option<String>; 5]; 5] = Default::default();
    for shape in &shapes {
        let sets = grid_outcome_sets(&shape.program);
        for i in 0..5 {
            for j in 0..5 {
                if i == j {
                    continue;
                }
                if !sets[i].is_subset(&sets[j]) {
                    if EXPECTED_SUBSET[i][j] {
                        let extra = sets[i]
                            .difference(&sets[j])
                            .next()
                            .expect("non-subset has an extra outcome");
                        panic!(
                            "{} ⊆ {} fails on corpus shape `{}`:\n\
                             outcome {extra}\nis reachable on {} but not on {}; witness:\n{}",
                            GRID[i],
                            GRID[j],
                            shape.name,
                            GRID[i],
                            GRID[j],
                            grid_witness(i, &shape.program, extra),
                        );
                    }
                    separators[i][j].get_or_insert_with(|| shape.name.clone());
                }
                if sets[i].is_subset(&sets[j]) && sets[i].len() < sets[j].len() {
                    strict[i][j].get_or_insert_with(|| shape.name.clone());
                }
            }
        }
    }
    for i in 0..5 {
        for j in 0..5 {
            if i == j {
                continue;
            }
            if EXPECTED_SUBSET[i][j] {
                assert!(
                    strict[i][j].is_some(),
                    "no corpus shape shows {} ⊊ {}: the pair never separates",
                    GRID[i],
                    GRID[j]
                );
            } else {
                assert!(
                    separators[i][j].is_some(),
                    "no corpus shape separates {} from {}: {} ⊆ {} held everywhere \
                     but the lattice says it must not",
                    GRID[i],
                    GRID[j],
                    GRID[i],
                    GRID[j]
                );
            }
        }
    }
}

/// Definition 2's software-side guarantee, corpus-wide: the DRF0
/// flavors (`+sync`, `+rmw`) admit exactly the SC outcomes on every
/// machine that recognizes synchronization operations.
#[test]
fn drf_corpus_shapes_appear_sc_on_every_sync_honoring_machine() {
    use weakord::mc::machines::BnrMachine;
    use weakord::mc::{explore_reduced, Machine};
    for shape in gen::corpus(0).iter().filter(|s| s.drf) {
        let sc = explore_reduced(&ScMachine, &shape.program, Limits::default()).outcomes;
        macro_rules! check {
            ($m:expr) => {
                let got = explore_reduced(&$m, &shape.program, Limits::default()).outcomes;
                assert_eq!(
                    got,
                    sc,
                    "{}: DRF0 shape `{}` is not SC-only",
                    Machine::name(&$m),
                    shape.name
                );
            };
        }
        check!(TsoMachine);
        check!(PsoMachine);
        check!(WoDef1Machine);
        check!(WoDef2Machine::default());
        check!(BnrMachine);
    }
}

/// The contract survives an adversarial interconnect: every DRF0
/// program in the suite keeps SC-only outcomes on the cycle-level
/// Definition 2 machine — queueing or NACKing sync requests — under
/// seeded fault schedules with eventual delivery (the drop/dup/reorder
/// layer of `weakord-sim`).
#[test]
fn contract_sweep_holds_under_interconnect_faults() {
    use weakord::coherence::{CoherentMachine, Config, Policy};
    use weakord::mc::sc_outcome_set;
    use weakord::sim::FaultPlan;
    for prog in suite() {
        if !check_program_drf(&prog, HbMode::Drf0, TraceLimits::default()).is_race_free() {
            continue;
        }
        let sc = sc_outcome_set(&prog, Limits::default());
        for policy in [Policy::def2(), Policy::def2_nack()] {
            for i in 0..4u64 {
                let faults = FaultPlan::with_rates(0xC0DE ^ i, 50, 50, 50, 20);
                let cfg = Config { policy, seed: i, faults, ..Config::default() };
                let r = CoherentMachine::new(&prog, cfg)
                    .run()
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", prog.name, policy.name()));
                assert!(
                    sc.contains(&r.outcome),
                    "{} under {} fault-seed {:#x}: non-SC outcome under faults",
                    prog.name,
                    policy.name(),
                    faults.seed
                );
            }
        }
    }
}
