//! A small program representation for multiprocessor memory-model
//! experiments.
//!
//! Programs are per-processor instruction sequences over a register file
//! and shared memory locations. Memory is touched only through explicit
//! [`Instr`] variants, and synchronization uses hardware-recognizable,
//! single-location primitives — exactly the software DRF0
//! (Definition 3, condition 1) talks about. Local computation (register
//! moves, arithmetic, branches) lets litmus tests express conditional
//! outcomes and lets workloads express spin loops, critical sections and
//! barriers.

use std::fmt;

use weakord_core::{Loc, Value};

/// Number of registers each thread owns.
pub const N_REGS: usize = 8;

/// A thread-local register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= N_REGS`.
    pub const fn new(index: u8) -> Self {
        assert!((index as usize) < N_REGS, "register index out of range");
        Reg(index)
    }

    /// The register's index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A source operand: an immediate value or a register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// An immediate constant.
    Const(Value),
    /// The current content of a register.
    Reg(Reg),
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Const(v)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Const(Value::new(v))
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(v) => write!(f, "#{v}"),
            Operand::Reg(r) => write!(f, "{r}"),
        }
    }
}

/// The atomic update performed by a read-modify-write synchronization
/// primitive. All variants read the old value and store a new one in a
/// single indivisible step (with respect to other synchronization
/// operations on the same location — the Section 5.2 assumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RmwOp {
    /// `TestAndSet`: store 1, return the old value.
    TestAndSet,
    /// Fetch-and-add: store `old + k`, return the old value.
    FetchAdd(u64),
    /// Swap: store the operand's value, return the old value.
    Swap(Value),
}

impl RmwOp {
    /// Computes the stored value from the value read.
    pub fn apply(self, old: Value) -> Value {
        match self {
            RmwOp::TestAndSet => Value::new(1),
            RmwOp::FetchAdd(k) => old.wrapping_add(k),
            RmwOp::Swap(v) => v,
        }
    }
}

impl fmt::Display for RmwOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmwOp::TestAndSet => write!(f, "tas"),
            RmwOp::FetchAdd(k) => write!(f, "faa+{k}"),
            RmwOp::Swap(v) => write!(f, "swap={v}"),
        }
    }
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant fields (dst/src/loc/target) are self-describing
pub enum Instr {
    /// Data read of `loc` into `dst`.
    Read { dst: Reg, loc: Loc },
    /// Data write of `src` to `loc`.
    Write { loc: Loc, src: Operand },
    /// Read-only synchronization (`Test`): reads `loc` into `dst`.
    SyncRead { dst: Reg, loc: Loc },
    /// Write-only synchronization (`Set`/`Unset`): stores `src` to `loc`.
    SyncWrite { loc: Loc, src: Operand },
    /// Read-modify-write synchronization; the old value lands in `dst`.
    SyncRmw { dst: Reg, loc: Loc, op: RmwOp },
    /// MFENCE-style full memory fence: every earlier access by this
    /// thread is globally performed before any later access issues.
    /// Touches no location itself; machines without fence support
    /// (pure Definition 1/2 cache hardware) treat it as a no-op.
    Fence,
    /// Branch to `target` if the register is zero.
    BranchZero { reg: Reg, target: u32 },
    /// Branch to `target` if the register is non-zero.
    BranchNonZero { reg: Reg, target: u32 },
    /// Unconditional jump.
    Jump { target: u32 },
    /// `dst := src`.
    Move { dst: Reg, src: Operand },
    /// `dst := dst + src` (wrapping).
    Add { dst: Reg, src: Operand },
    /// `dst := dst - src` (wrapping).
    Sub { dst: Reg, src: Operand },
    /// Local work taking `cycles` processor cycles in the timed
    /// simulator; a no-op for exhaustive exploration.
    Delay { cycles: u32 },
    /// Stop this thread.
    Halt,
}

impl Instr {
    /// Returns `true` if executing this instruction touches shared
    /// memory.
    pub fn is_memory(&self) -> bool {
        matches!(
            self,
            Instr::Read { .. }
                | Instr::Write { .. }
                | Instr::SyncRead { .. }
                | Instr::SyncWrite { .. }
                | Instr::SyncRmw { .. }
        )
    }
}

/// Validation failure for a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch or jump target is past the end of the thread.
    BadTarget {
        /// Thread index.
        thread: usize,
        /// Instruction index.
        instr: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// A memory instruction names a location `>= n_locs`.
    BadLocation {
        /// Thread index.
        thread: usize,
        /// Instruction index.
        instr: usize,
        /// The offending location.
        loc: Loc,
    },
    /// A thread does not end every path with `Halt` (the last
    /// instruction must be `Halt`, `Jump`, or a branch).
    MissingHalt {
        /// Thread index.
        thread: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadTarget { thread, instr, target } => {
                write!(
                    f,
                    "thread {thread} instruction {instr}: branch target {target} out of range"
                )
            }
            ProgramError::BadLocation { thread, instr, loc } => {
                write!(f, "thread {thread} instruction {instr}: location {loc} out of range")
            }
            ProgramError::MissingHalt { thread } => {
                write!(f, "thread {thread} can run past the end of its instruction list")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// One processor's instruction sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Thread {
    /// The instructions, executed from index 0.
    pub instrs: Vec<Instr>,
}

impl Thread {
    /// Creates an empty thread (equivalent to a single `Halt`).
    pub fn new() -> Self {
        Thread::default()
    }
}

/// A whole multiprocessor program.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    /// Human-readable name used in reports.
    pub name: String,
    /// One [`Thread`] per processor.
    pub threads: Vec<Thread>,
    /// Number of shared memory locations; every location named by an
    /// instruction must be `< n_locs`.
    pub n_locs: u32,
}

impl Program {
    /// Creates a program and validates it.
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn new(
        name: impl Into<String>,
        threads: Vec<Thread>,
        n_locs: u32,
    ) -> Result<Self, ProgramError> {
        let prog = Program { name: name.into(), threads, n_locs };
        prog.validate()?;
        Ok(prog)
    }

    /// Number of processors.
    pub fn n_procs(&self) -> usize {
        self.threads.len()
    }

    /// Re-checks the structural invariants.
    ///
    /// # Errors
    ///
    /// See [`ProgramError`].
    pub fn validate(&self) -> Result<(), ProgramError> {
        for (t, thread) in self.threads.iter().enumerate() {
            let n = thread.instrs.len() as u32;
            for (i, instr) in thread.instrs.iter().enumerate() {
                let target = match instr {
                    Instr::BranchZero { target, .. }
                    | Instr::BranchNonZero { target, .. }
                    | Instr::Jump { target } => Some(*target),
                    _ => None,
                };
                if let Some(target) = target {
                    if target >= n {
                        return Err(ProgramError::BadTarget { thread: t, instr: i, target });
                    }
                }
                let loc = match instr {
                    Instr::Read { loc, .. }
                    | Instr::Write { loc, .. }
                    | Instr::SyncRead { loc, .. }
                    | Instr::SyncWrite { loc, .. }
                    | Instr::SyncRmw { loc, .. } => Some(*loc),
                    _ => None,
                };
                if let Some(loc) = loc {
                    if loc.raw() >= self.n_locs {
                        return Err(ProgramError::BadLocation { thread: t, instr: i, loc });
                    }
                }
            }
            // Every thread must end in an instruction that cannot fall
            // through (Halt/Jump), so the interpreter never runs off the
            // end. Branches can fall through, so they do not qualify.
            match thread.instrs.last() {
                None | Some(Instr::Halt) | Some(Instr::Jump { .. }) => {}
                Some(_) => return Err(ProgramError::MissingHalt { thread: t }),
            }
        }
        Ok(())
    }

    /// Upper bound on the number of memory operations a straight-line
    /// pass over each thread would perform (loops can exceed it; used
    /// only for capacity hints).
    pub fn memory_instr_count(&self) -> usize {
        self.threads.iter().map(|t| t.instrs.iter().filter(|i| i.is_memory()).count()).sum()
    }
}

/// Fluent assembler for a [`Thread`].
///
/// Forward branches are created with `*_placeholder` and patched once
/// the target is known:
///
/// ```
/// use weakord_progs::{Reg, ThreadBuilder};
/// use weakord_core::Loc;
/// let mut t = ThreadBuilder::new();
/// let r0 = Reg::new(0);
/// t.read(r0, Loc::new(0));
/// let j = t.branch_zero_placeholder(r0);
/// t.write(Loc::new(1), 1u64);
/// let end = t.here();
/// t.patch(j, end);
/// t.halt();
/// let thread = t.finish();
/// assert_eq!(thread.instrs.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThreadBuilder {
    instrs: Vec<Instr>,
}

impl ThreadBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ThreadBuilder::default()
    }

    /// Index the next pushed instruction will get.
    pub fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Pushes a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Data read of `loc` into `dst`.
    pub fn read(&mut self, dst: Reg, loc: Loc) -> &mut Self {
        self.push(Instr::Read { dst, loc })
    }

    /// Data write of `src` to `loc`.
    pub fn write(&mut self, loc: Loc, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Write { loc, src: src.into() })
    }

    /// `Test`: read-only synchronization into `dst`.
    pub fn sync_read(&mut self, dst: Reg, loc: Loc) -> &mut Self {
        self.push(Instr::SyncRead { dst, loc })
    }

    /// `Set`/`Unset`: write-only synchronization storing `src`.
    pub fn sync_write(&mut self, loc: Loc, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::SyncWrite { loc, src: src.into() })
    }

    /// `TestAndSet` into `dst`.
    pub fn test_and_set(&mut self, dst: Reg, loc: Loc) -> &mut Self {
        self.push(Instr::SyncRmw { dst, loc, op: RmwOp::TestAndSet })
    }

    /// Fetch-and-add `k`, old value into `dst`.
    pub fn fetch_add(&mut self, dst: Reg, loc: Loc, k: u64) -> &mut Self {
        self.push(Instr::SyncRmw { dst, loc, op: RmwOp::FetchAdd(k) })
    }

    /// Atomic swap storing `v`, old value into `dst`.
    pub fn swap(&mut self, dst: Reg, loc: Loc, v: Value) -> &mut Self {
        self.push(Instr::SyncRmw { dst, loc, op: RmwOp::Swap(v) })
    }

    /// Full memory fence.
    pub fn fence(&mut self) -> &mut Self {
        self.push(Instr::Fence)
    }

    /// Branch to `target` if `reg` is zero.
    pub fn branch_zero(&mut self, reg: Reg, target: u32) -> &mut Self {
        self.push(Instr::BranchZero { reg, target })
    }

    /// Branch to `target` if `reg` is non-zero.
    pub fn branch_non_zero(&mut self, reg: Reg, target: u32) -> &mut Self {
        self.push(Instr::BranchNonZero { reg, target })
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: u32) -> &mut Self {
        self.push(Instr::Jump { target })
    }

    /// `dst := src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Move { dst, src: src.into() })
    }

    /// `dst := dst + src`.
    pub fn add(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Add { dst, src: src.into() })
    }

    /// `dst := dst - src`.
    pub fn sub(&mut self, dst: Reg, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Sub { dst, src: src.into() })
    }

    /// Local work of `cycles` cycles (timed simulator only).
    pub fn delay(&mut self, cycles: u32) -> &mut Self {
        self.push(Instr::Delay { cycles })
    }

    /// Stop the thread.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }

    /// Pushes a branch-if-zero with a dummy target; patch it later.
    pub fn branch_zero_placeholder(&mut self, reg: Reg) -> usize {
        let at = self.instrs.len();
        self.push(Instr::BranchZero { reg, target: 0 });
        at
    }

    /// Pushes a branch-if-non-zero with a dummy target; patch it later.
    pub fn branch_non_zero_placeholder(&mut self, reg: Reg) -> usize {
        let at = self.instrs.len();
        self.push(Instr::BranchNonZero { reg, target: 0 });
        at
    }

    /// Pushes a jump with a dummy target; patch it later.
    pub fn jump_placeholder(&mut self) -> usize {
        let at = self.instrs.len();
        self.push(Instr::Jump { target: 0 });
        at
    }

    /// Rewrites the target of the branch/jump at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` does not hold a branch or jump.
    pub fn patch(&mut self, at: usize, target: u32) -> &mut Self {
        match &mut self.instrs[at] {
            Instr::BranchZero { target: t, .. }
            | Instr::BranchNonZero { target: t, .. }
            | Instr::Jump { target: t } => *t = target,
            other => panic!("patch: instruction at {at} is not a branch/jump: {other:?}"),
        }
        self
    }

    /// Finishes the thread.
    pub fn finish(self) -> Thread {
        Thread { instrs: self.instrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> Loc {
        Loc::new(i)
    }

    #[test]
    fn reg_bounds() {
        assert_eq!(Reg::new(7).index(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_rejects_out_of_range() {
        let _ = Reg::new(8);
    }

    #[test]
    fn rmw_apply() {
        assert_eq!(RmwOp::TestAndSet.apply(Value::ZERO), Value::new(1));
        assert_eq!(RmwOp::TestAndSet.apply(Value::new(9)), Value::new(1));
        assert_eq!(RmwOp::FetchAdd(3).apply(Value::new(4)), Value::new(7));
        assert_eq!(RmwOp::Swap(Value::new(5)).apply(Value::new(4)), Value::new(5));
    }

    #[test]
    fn program_validation_accepts_well_formed() {
        let mut t = ThreadBuilder::new();
        t.write(l(0), 1u64);
        t.read(Reg::new(0), l(1));
        t.halt();
        let p = Program::new("ok", vec![t.finish()], 2).unwrap();
        assert_eq!(p.n_procs(), 1);
        assert_eq!(p.memory_instr_count(), 2);
    }

    #[test]
    fn program_rejects_bad_target() {
        let mut t = ThreadBuilder::new();
        t.jump(5);
        let err = Program::new("bad", vec![t.finish()], 1).unwrap_err();
        assert!(matches!(err, ProgramError::BadTarget { target: 5, .. }));
    }

    #[test]
    fn program_rejects_bad_location() {
        let mut t = ThreadBuilder::new();
        t.write(l(3), 1u64);
        t.halt();
        let err = Program::new("bad", vec![t.finish()], 2).unwrap_err();
        assert!(matches!(err, ProgramError::BadLocation { .. }));
    }

    #[test]
    fn program_rejects_fallthrough_end() {
        let mut t = ThreadBuilder::new();
        t.write(l(0), 1u64);
        let err = Program::new("bad", vec![t.finish()], 1).unwrap_err();
        assert!(matches!(err, ProgramError::MissingHalt { thread: 0 }));
    }

    #[test]
    fn empty_thread_is_valid() {
        let p = Program::new("empty", vec![Thread::new()], 0).unwrap();
        assert_eq!(p.memory_instr_count(), 0);
    }

    #[test]
    fn branch_as_last_instruction_is_rejected() {
        let mut t = ThreadBuilder::new();
        t.branch_zero(Reg::new(0), 0);
        let err = Program::new("bad", vec![t.finish()], 0).unwrap_err();
        assert!(matches!(err, ProgramError::MissingHalt { .. }));
    }

    #[test]
    fn placeholder_patching() {
        let mut t = ThreadBuilder::new();
        let j = t.jump_placeholder();
        t.halt();
        let end = t.here() - 1;
        t.patch(j, end);
        let th = t.finish();
        assert_eq!(th.instrs[0], Instr::Jump { target: 1 });
    }

    #[test]
    #[should_panic(expected = "not a branch")]
    fn patch_rejects_non_branch() {
        let mut t = ThreadBuilder::new();
        t.halt();
        t.patch(0, 0);
    }

    #[test]
    fn operand_conversions_and_display() {
        assert_eq!(Operand::from(3u64), Operand::Const(Value::new(3)));
        assert_eq!(Operand::from(Reg::new(2)), Operand::Reg(Reg::new(2)));
        assert_eq!(Operand::Const(Value::new(3)).to_string(), "#3");
        assert_eq!(Operand::Reg(Reg::new(2)).to_string(), "r2");
    }

    #[test]
    fn is_memory_classification() {
        assert!(Instr::Read { dst: Reg::new(0), loc: l(0) }.is_memory());
        assert!(Instr::SyncRmw { dst: Reg::new(0), loc: l(0), op: RmwOp::TestAndSet }.is_memory());
        assert!(!Instr::Halt.is_memory());
        assert!(!Instr::Fence.is_memory());
        assert!(!Instr::Delay { cycles: 3 }.is_memory());
        assert!(!Instr::Move { dst: Reg::new(0), src: Operand::from(1u64) }.is_memory());
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Read { dst, loc } => write!(f, "{dst} := read {loc}"),
            Instr::Write { loc, src } => write!(f, "write {loc} := {src}"),
            Instr::SyncRead { dst, loc } => write!(f, "{dst} := sync.test {loc}"),
            Instr::SyncWrite { loc, src } => write!(f, "sync.set {loc} := {src}"),
            Instr::SyncRmw { dst, loc, op } => write!(f, "{dst} := sync.{op} {loc}"),
            Instr::Fence => write!(f, "fence"),
            Instr::BranchZero { reg, target } => write!(f, "bz {reg}, @{target}"),
            Instr::BranchNonZero { reg, target } => write!(f, "bnz {reg}, @{target}"),
            Instr::Jump { target } => write!(f, "jmp @{target}"),
            Instr::Move { dst, src } => write!(f, "{dst} := {src}"),
            Instr::Add { dst, src } => write!(f, "{dst} += {src}"),
            Instr::Sub { dst, src } => write!(f, "{dst} -= {src}"),
            Instr::Delay { cycles } => write!(f, "delay {cycles}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

impl fmt::Display for Program {
    /// Disassembles the whole program, one thread per column-block.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program `{}` ({} threads, {} locations)",
            self.name,
            self.threads.len(),
            self.n_locs
        )?;
        for (t, thread) in self.threads.iter().enumerate() {
            writeln!(f, "  thread {t}:")?;
            if thread.instrs.is_empty() {
                writeln!(f, "    (empty)")?;
            }
            for (i, instr) in thread.instrs.iter().enumerate() {
                writeln!(f, "    @{i:<3} {instr}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn instr_display_covers_all_variants() {
        let r = Reg::new(1);
        let l = Loc::new(2);
        let cases = [
            (Instr::Read { dst: r, loc: l }, "r1 := read loc2"),
            (Instr::Write { loc: l, src: Operand::Const(Value::new(3)) }, "write loc2 := #3"),
            (Instr::SyncRead { dst: r, loc: l }, "r1 := sync.test loc2"),
            (Instr::SyncWrite { loc: l, src: Operand::Reg(r) }, "sync.set loc2 := r1"),
            (Instr::SyncRmw { dst: r, loc: l, op: RmwOp::TestAndSet }, "r1 := sync.tas loc2"),
            (Instr::Fence, "fence"),
            (Instr::BranchZero { reg: r, target: 4 }, "bz r1, @4"),
            (Instr::BranchNonZero { reg: r, target: 4 }, "bnz r1, @4"),
            (Instr::Jump { target: 9 }, "jmp @9"),
            (Instr::Move { dst: r, src: Operand::Const(Value::new(1)) }, "r1 := #1"),
            (Instr::Add { dst: r, src: Operand::Const(Value::new(1)) }, "r1 += #1"),
            (Instr::Sub { dst: r, src: Operand::Const(Value::new(1)) }, "r1 -= #1"),
            (Instr::Delay { cycles: 7 }, "delay 7"),
            (Instr::Halt, "halt"),
        ];
        for (instr, want) in cases {
            assert_eq!(instr.to_string(), want);
        }
    }

    #[test]
    fn program_display_lists_threads() {
        let mut t = ThreadBuilder::new();
        t.write(Loc::new(0), 1u64);
        t.halt();
        let p = Program::new("demo", vec![t.finish(), Thread::new()], 1).unwrap();
        let s = p.to_string();
        assert!(s.contains("program `demo` (2 threads, 1 locations)"), "{s}");
        assert!(s.contains("@0   write loc0 := #1"), "{s}");
        assert!(s.contains("(empty)"), "{s}");
    }
}
