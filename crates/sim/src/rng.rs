//! Seeded randomness for reproducible simulations.
//!
//! Implemented in-tree on SplitMix64 (Steele, Lea & Flood, *Fast
//! splittable pseudorandom number generators*, OOPSLA 2014) so the
//! workspace builds hermetically with no registry access. SplitMix64
//! passes BigCrush, is trivially seedable from a `u64`, and — unlike
//! most xorshift-family generators — splits into provably independent
//! streams, which [`SimRng::split`] relies on.

/// A seeded random source. Every experiment takes an explicit seed so
/// results are reproducible run-to-run and across machines.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

/// The SplitMix64 odd increment (the "golden gamma", ⌊2^64/φ⌋ | 1).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SimRng {
    /// Creates a source from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// The next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform sample from an inclusive range.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the sample is
    /// exactly uniform over the range (no modulo bias).
    pub fn range(&mut self, r: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*r.start(), *r.end());
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full 64-bit range.
            return self.next_u64();
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let low = m as u64;
            if low >= span.wrapping_neg() % span {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// A biased coin.
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random bits give a uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Splits off an independent stream (for per-component randomness
    /// that stays stable when other components change their draw
    /// counts).
    pub fn split(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(3);
        let mut b = SimRng::new(3);
        for _ in 0..50 {
            assert_eq!(a.range(0..=1000), b.range(0..=1000));
        }
    }

    #[test]
    fn split_streams_are_independent_of_parent_usage() {
        let mut a = SimRng::new(3);
        let mut split_early = a.split();
        let mut b = SimRng::new(3);
        let mut split_early_b = b.split();
        // Use the parents differently…
        let _ = a.range(0..=10);
        for _ in 0..5 {
            let _ = b.range(0..=10);
        }
        // …the earlier splits still agree.
        for _ in 0..20 {
            assert_eq!(split_early.range(0..=1000), split_early_b.range(0..=1000));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn range_stays_in_bounds_and_hits_endpoints() {
        let mut r = SimRng::new(42);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..2000 {
            let v = r.range(5..=8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi, "a 4-value range should hit both endpoints in 2000 draws");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::new(7);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 0 from the SplitMix64 paper's
        // published implementation.
        let mut r = SimRng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }
}
