//! # weakord-mc — exhaustive operational memory-model checking
//!
//! This crate mechanizes the paper's qualitative claims. It provides:
//!
//! * a [`Machine`] interface for nondeterministic operational models of
//!   multiprocessor memory systems, and implementations for Lamport's
//!   interleaving reference ([`machines::ScMachine`]), the four relaxed
//!   configurations of Figure 1, Definition 1 weak ordering
//!   ([`machines::WoDef1Machine`]) and the paper's new Section 5
//!   implementation ([`machines::WoDef2Machine`]);
//! * an exhaustive explorer ([`explore`]) collecting each machine's
//!   reachable outcome set;
//! * the weak-ordering **contract** checks ([`contract`]): a machine
//!   appears sequentially consistent to a program iff its outcome set is
//!   contained in the SC outcome set, and it is weakly ordered w.r.t. a
//!   synchronization model iff that holds for every conforming program;
//! * program-level DRF0 classification ([`check_program_drf`]) by
//!   enumerating idealized executions with the online race detector.
//!
//! ## Example: Figure 1 in one assertion
//!
//! ```
//! use weakord_mc::{explore, Limits};
//! use weakord_mc::machines::{ScMachine, WriteBufferMachine};
//! use weakord_progs::litmus;
//!
//! let dekker = litmus::fig1_dekker();
//! let sc = explore(&ScMachine, &dekker.program, Limits::default());
//! let wb = explore(&WriteBufferMachine, &dekker.program, Limits::default());
//! assert!(sc.outcomes.iter().all(|o| !(dekker.non_sc)(o)));
//! assert!(wb.outcomes.iter().any(|o| (dekker.non_sc)(o)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod contract;
mod explore;
pub mod fxhash;
mod legacy;
mod machine;
pub mod machines;
mod reduce;
pub mod shrink;
mod trace;
pub mod visited;

pub use checkpoint::{CheckpointCfg, CheckpointError, CkptStore, Codec, DiskStore};
pub use contract::{
    appears_sc, check_weak_ordering, check_weak_ordering_model, sc_outcome_set, ContractReport,
    ContractRow, ScAppearance,
};
pub use explore::{
    explore, explore_checkpointed, explore_checkpointed_with_cancel,
    explore_checkpointed_with_progress, explore_seq, explore_with_cancel, explore_with_progress,
    find_witness, resume_exploration, resume_with_cancel, resume_with_progress, CancelToken,
    Exploration, ExplorationStats, Limits, ProgressSink, ProgressSnapshot, Reduction,
    TruncationReason, Witness, N_SHARDS,
};
pub use legacy::explore_legacy;
pub use machine::{
    advance_skipping_delays, advance_skipping_delays_and_fences, outcome_if_halted, DeliveryClass,
    Footprint, InternalKind, InternalStep, Label, Machine, OpRecord, ReductionClass, SyncGate,
};
pub use reduce::{explore_reduced, explore_reduced_checkpointed, resume_reduced};
pub use shrink::{shrink_witness, ShrinkReport};
pub use trace::{
    check_program_conforms, check_program_drf, ProgramConformance, ProgramDrfVerdict, TraceLimits,
};
