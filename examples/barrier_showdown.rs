//! The Section 6 pathology: spinning under the new implementation.
//!
//! The paper warns that the Section 5 implementation serializes
//! repeated testing of a synchronization variable ("the Test from a
//! Test-and-TestAndSet or spinning on a barrier count"), because every
//! synchronization operation is treated as a write and takes the line
//! exclusive — and shows how refining DRF0 into a DRF1-style model
//! removes the penalty. This example measures exactly that, on a
//! broadcast spin and on a full barrier.
//!
//! Run with: `cargo run --example barrier_showdown`

use weakord::coherence::{CoherentMachine, Config, Policy};
use weakord::progs::workloads::{barrier, spin_broadcast, BarrierParams, SpinBroadcastParams};
use weakord::progs::Program;

fn measure(prog: &Program, policy: Policy) -> (u64, u64, u64) {
    let cfg = Config { policy, seed: 5, ..Config::default() };
    let r = CoherentMachine::new(prog, cfg).run().expect("run completes");
    (r.cycles, r.counters.get("GetX"), r.counters.get("GetS"))
}

fn main() {
    println!("Broadcast spin: 1 releaser works 600 cycles, N spinners Test the flag.\n");
    println!(
        "{:>9} {:>11} {:>13} {:>11} {:>13}",
        "spinners", "def2 GetX", "def2 cycles", "drf1 GetX", "drf1 cycles"
    );
    for n in [1u16, 2, 4, 8] {
        let prog = spin_broadcast(SpinBroadcastParams { n_spinners: n, release_after: 600 });
        let (pc, pgx, _) = measure(&prog, Policy::def2());
        let (rc, rgx, _) = measure(&prog, Policy::def2_drf1());
        println!("{n:>9} {pgx:>11} {pc:>13} {rgx:>11} {rc:>13}");
    }
    println!(
        "\nEvery plain-def2 Test is an exclusive request (the spinners ping-pong\n\
         the line); refined spinners fetch a shared copy once and spin locally.\n"
    );

    println!("Full barrier (2 rounds, data exchange through the barrier):\n");
    println!("{:>7} {:>12} {:>12} {:>12}", "procs", "def1 cycles", "def2 cycles", "drf1 cycles");
    for n in [2u16, 4, 6] {
        let prog = barrier(BarrierParams { n_procs: n, rounds: 2, work: 40 });
        let (d1, _, _) = measure(&prog, Policy::Def1);
        let (d2, _, _) = measure(&prog, Policy::def2());
        let (dr, _, _) = measure(&prog, Policy::def2_drf1());
        println!("{n:>7} {d1:>12} {d2:>12} {dr:>12}");
    }
    println!(
        "\nThe refinement recovers the spinning loss while keeping the paper's\n\
         releaser-side win — the best of both definitions."
    );
}
