//! The weakly ordered machines: Dubois/Scheurich/Briggs' Definition 1
//! hardware and the paper's new Section 5 implementation, as operational
//! models over the cache substrate.
//!
//! Both machines run *data* accesses exactly like
//! [`crate::machines::CacheDelayMachine`] — writes commit locally with
//! lazy invalidations — and differ only in how synchronization
//! operations wait:
//!
//! * **Definition 1** ([`WoDef1Machine`]): a processor may not execute a
//!   synchronization operation until all of its own previous accesses
//!   are globally performed, and no later access is issued until the
//!   synchronization operation is globally performed.
//! * **Definition 2 implementation** ([`WoDef2Machine`], Section 5.3):
//!   the issuing processor does **not** wait for its pending accesses —
//!   it commits the synchronization operation and moves on. Instead, the
//!   location is *reserved*: a subsequent synchronization operation by
//!   another processor on the same location stalls until the reserving
//!   processor's previous writes are globally performed (the counter +
//!   reserve-bit mechanism; condition 5 of Section 5.1).
//!
//! In both machines a synchronization operation's own value management
//! is atomic (commit and global perform coincide for the sync line
//! itself) — a conservative simplification of the protocol's
//! exclusive-ownership transfer; the cycle-level model in
//! `weakord-coherence` implements the real message protocol.

use weakord_core::ProcId;

use crate::checkpoint::{Codec, DecodeError, Reader};
use weakord_progs::{Access, Outcome, Program, ThreadEvent, ThreadState};

use crate::machine::{
    advance_skipping_delays_and_fences, outcome_if_halted, DeliveryClass, InternalStep, Label,
    Machine, OpRecord, ReductionClass, SyncGate,
};
use crate::machines::substrate::CacheState;

/// Definition 1 weak ordering (the old definition).
#[derive(Debug, Clone, Copy, Default)]
pub struct WoDef1Machine;

/// The Section 5 implementation, weakly ordered w.r.t. DRF0 by
/// Definition 2 but *not* allowed by Definition 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct WoDef2Machine {
    /// Apply the Section 6 refinement: read-only synchronization
    /// operations (`Test`) do not reserve the location and so do not
    /// stall later synchronizers on the issuer's pending accesses.
    pub drf1_refined: bool,
}

/// Shared state of the weakly ordered machines.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WoState {
    /// Architectural thread states.
    pub threads: Vec<ThreadState>,
    /// The cache ensemble.
    pub cache: CacheState,
    /// Per location: the processor whose synchronization operation
    /// committed last (the reserve owner for condition 5). Only used by
    /// the Definition 2 machine.
    pub last_sync: Vec<Option<ProcId>>,
}

fn initial(prog: &Program) -> WoState {
    WoState {
        threads: weakord_progs::initial_threads(prog),
        cache: CacheState::new(prog.n_procs(), prog.n_locs as usize),
        last_sync: vec![None; prog.n_locs as usize],
    }
}

fn outcome(prog: &Program, state: &WoState) -> Option<Outcome> {
    if state.cache.pending_len() > 0 {
        return None;
    }
    let mem =
        (0..prog.n_locs).map(|l| state.cache.read_latest(weakord_core::Loc::new(l))).collect();
    outcome_if_halted(&state.threads, mem)
}

/// How synchronization operations gate on outstanding accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncRule {
    /// Stall the *issuer* until its own accesses are globally performed.
    Def1,
    /// Stall the *next synchronizer* on the reserving processor's
    /// outstanding accesses; `refine_read_only` exempts `Test`s from
    /// reserving.
    Def2 { refine_read_only: bool },
    /// Stall the synchronizer until *no* access by *any* processor is
    /// outstanding (the BNR timestamp scheme).
    GlobalDrain,
}

fn successors(rule: SyncRule, prog: &Program, state: &WoState, out: &mut Vec<(Label, WoState)>) {
    for t in 0..state.threads.len() {
        if state.threads[t].is_halted() {
            continue;
        }
        let thread = &prog.threads[t];
        let mut next = state.clone();
        let ThreadEvent::Access(access) =
            advance_skipping_delays_and_fences(&mut next.threads[t], thread)
        else {
            // The advance reached Halt: keep the halted thread state.
            out.push((Label::Internal(InternalStep::halt(ProcId::new(t as u16))), next));
            continue;
        };
        let proc = ProcId::new(t as u16);
        let kind = access.op_kind();
        let loc = access.loc();
        if access.is_sync() {
            // Gate the synchronization operation.
            let enabled = match rule {
                SyncRule::Def1 => !next.cache.source_pending(proc),
                SyncRule::Def2 { .. } => match next.last_sync[loc.index()] {
                    Some(owner) if owner != proc => !next.cache.source_pending(owner),
                    _ => true,
                },
                SyncRule::GlobalDrain => next.cache.pending_len() == 0,
            };
            if !enabled {
                continue;
            }
            let reserves = match rule {
                SyncRule::Def1 | SyncRule::GlobalDrain => false,
                SyncRule::Def2 { refine_read_only } => {
                    !(refine_read_only && matches!(access, Access::Read { .. }))
                }
            };
            let record = match access {
                Access::Read { .. } => {
                    let v = next.cache.read_latest(loc);
                    next.threads[t].complete(thread, Some(v));
                    OpRecord { proc, kind, loc, read_value: Some(v), written_value: None }
                }
                Access::Write { value, .. } => {
                    next.cache.write_atomic(loc, value);
                    next.threads[t].complete(thread, None);
                    OpRecord { proc, kind, loc, read_value: None, written_value: Some(value) }
                }
                Access::Rmw { op, .. } => {
                    let old = next.cache.read_latest(loc);
                    let new = op.apply(old);
                    next.cache.write_atomic(loc, new);
                    next.threads[t].complete(thread, Some(old));
                    OpRecord { proc, kind, loc, read_value: Some(old), written_value: Some(new) }
                }
            };
            if reserves {
                next.last_sync[loc.index()] = Some(proc);
            }
            out.push((Label::Op(record), next));
        } else {
            // Data accesses: identical to the relaxed cache machine.
            let record = match access {
                Access::Read { .. } => {
                    let v = next.cache.read_local(proc, loc);
                    next.threads[t].complete(thread, Some(v));
                    OpRecord { proc, kind, loc, read_value: Some(v), written_value: None }
                }
                Access::Write { value, .. } => {
                    next.cache.write_relaxed(proc, loc, value);
                    next.threads[t].complete(thread, None);
                    OpRecord { proc, kind, loc, read_value: None, written_value: Some(value) }
                }
                Access::Rmw { .. } => unreachable!("RMW accesses are always synchronization"),
            };
            out.push((Label::Op(record), next));
        }
    }
    for i in 0..state.cache.pending_len() {
        let inv = state.cache.pending()[i];
        let mut next = state.clone();
        next.cache.deliver(i);
        let step = InternalStep::deliver(inv.source, inv.target, inv.loc);
        out.push((Label::Internal(step), next));
    }
}

impl Machine for WoDef1Machine {
    type State = WoState;

    fn name(&self) -> &'static str {
        "wo-def1"
    }

    fn initial(&self, prog: &Program) -> WoState {
        initial(prog)
    }

    fn successors(&self, prog: &Program, state: &WoState, out: &mut Vec<(Label, WoState)>) {
        successors(SyncRule::Def1, prog, state, out);
    }

    fn outcome(&self, prog: &Program, state: &WoState) -> Option<Outcome> {
        outcome(prog, state)
    }

    fn threads<'a>(&self, state: &'a WoState) -> &'a [ThreadState] {
        &state.threads
    }

    fn reduction_class(&self) -> ReductionClass {
        // Definition 1 gates a sync only on the *issuer's* own pending
        // writes (a same-processor dependence); deliveries update only
        // the target's copy, and sync reads use the latest value.
        ReductionClass {
            sync_gate: SyncGate::None,
            delivery: DeliveryClass::TargetCopy { sync_reads_local: false },
        }
    }
}

impl Machine for WoDef2Machine {
    type State = WoState;

    fn name(&self) -> &'static str {
        if self.drf1_refined {
            "wo-def2-drf1"
        } else {
            "wo-def2"
        }
    }

    fn initial(&self, prog: &Program) -> WoState {
        initial(prog)
    }

    fn successors(&self, prog: &Program, state: &WoState, out: &mut Vec<(Label, WoState)>) {
        successors(SyncRule::Def2 { refine_read_only: self.drf1_refined }, prog, state, out);
    }

    fn outcome(&self, prog: &Program, state: &WoState) -> Option<Outcome> {
        outcome(prog, state)
    }

    fn threads<'a>(&self, state: &'a WoState) -> &'a [ThreadState] {
        &state.threads
    }

    fn reduction_class(&self) -> ReductionClass {
        // Condition 5: a sync on `l` may stall on the queue of the
        // processor that last synchronized on `l`.
        ReductionClass {
            sync_gate: SyncGate::ReserveOwner,
            delivery: DeliveryClass::TargetCopy { sync_reads_local: false },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Limits};
    use crate::machines::ScMachine;
    use weakord_progs::litmus;

    fn outcomes<M: Machine>(m: &M, lit: &litmus::Litmus) -> crate::explore::Exploration {
        let ex = explore(m, &lit.program, Limits::default());
        assert!(!ex.truncated(), "{} truncated on {}", m.name(), lit.name);
        ex
    }

    #[test]
    fn both_wo_machines_appear_sc_on_drf0_litmus_tests() {
        for lit in litmus::all().iter().filter(|l| l.drf0) {
            let sc = outcomes(&ScMachine, lit);
            for (name, got) in [
                ("def1", outcomes(&WoDef1Machine, lit)),
                ("def2", outcomes(&WoDef2Machine::default(), lit)),
                ("def2-drf1", outcomes(&WoDef2Machine { drf1_refined: true }, lit)),
            ] {
                assert_eq!(got.deadlocks, 0, "{name} deadlocked on {}", lit.name);
                assert!(
                    got.outcomes.is_subset(&sc.outcomes),
                    "{name} shows non-SC outcomes on DRF0 program {}",
                    lit.name
                );
            }
        }
    }

    #[test]
    fn wo_machines_still_relax_racy_programs() {
        let lit = litmus::fig1_dekker();
        for got in [outcomes(&WoDef1Machine, &lit), outcomes(&WoDef2Machine::default(), &lit)] {
            assert!(got.outcomes.iter().any(|o| (lit.non_sc)(o)), "data races stay relaxed");
        }
    }

    #[test]
    fn racy_spy_separates_def1_from_def2() {
        // Definition 1 hardware globally performs W(x) before the release
        // commits anywhere, so the spy cannot see flag=1 ∧ x=0. The new
        // implementation commits the release first.
        let lit = litmus::racy_spy();
        let def1 = outcomes(&WoDef1Machine, &lit);
        let def2 = outcomes(&WoDef2Machine::default(), &lit);
        assert!(def1.outcomes.iter().all(|o| !(lit.non_sc)(o)), "Def.1 forbids the spy outcome");
        assert!(def2.outcomes.iter().any(|o| (lit.non_sc)(o)), "Def.2 impl allows the spy outcome");
    }

    #[test]
    fn def1_outcomes_are_a_subset_of_def2_outcomes() {
        // The new implementation strictly generalizes the old hardware's
        // behaviours on our litmus suite.
        for lit in litmus::all() {
            let def1 = outcomes(&WoDef1Machine, &lit);
            let def2 = outcomes(&WoDef2Machine::default(), &lit);
            assert!(def1.outcomes.is_subset(&def2.outcomes), "{}: def1 ⊄ def2", lit.name);
        }
    }

    #[test]
    fn no_deadlocks_anywhere_on_the_suite() {
        for lit in litmus::all() {
            for dl in [
                outcomes(&WoDef1Machine, &lit).deadlocks,
                outcomes(&WoDef2Machine::default(), &lit).deadlocks,
                outcomes(&WoDef2Machine { drf1_refined: true }, &lit).deadlocks,
            ] {
                assert_eq!(dl, 0, "deadlock on {}", lit.name);
            }
        }
    }
}

/// The Bisiani–Nowatzyk–Ravishankar style implementation the paper
/// discusses in Section 2.2: "timestamps ensure that a synchronization
/// operation completes only after all accesses previously issued by
/// **all** processors in the system are complete."
///
/// Operationally: a synchronization operation is enabled only when no
/// invalidation is pending anywhere — a global drain, stronger than
/// Definition 1's per-processor drain. It trivially satisfies
/// Definition 2 w.r.t. DRF0 (its behaviours are a subset of the
/// Definition 1 machine's), at an obvious scalability cost the paper's
/// implementation avoids.
#[derive(Debug, Clone, Copy, Default)]
pub struct BnrMachine;

impl Machine for BnrMachine {
    type State = WoState;

    fn name(&self) -> &'static str {
        "wo-bnr"
    }

    fn initial(&self, prog: &Program) -> WoState {
        initial(prog)
    }

    fn successors(&self, prog: &Program, state: &WoState, out: &mut Vec<(Label, WoState)>) {
        successors(SyncRule::GlobalDrain, prog, state, out);
    }

    fn outcome(&self, prog: &Program, state: &WoState) -> Option<Outcome> {
        outcome(prog, state)
    }

    fn threads<'a>(&self, state: &'a WoState) -> &'a [ThreadState] {
        &state.threads
    }

    fn reduction_class(&self) -> ReductionClass {
        // The timestamp scheme stalls every sync until *all* queues
        // drain — which conversely means that while any message is
        // pending no sync can fire anywhere, a fact the reduction
        // exploits for its sync-shielded delivery rule.
        ReductionClass {
            sync_gate: SyncGate::GlobalDrain,
            delivery: DeliveryClass::TargetCopy { sync_reads_local: false },
        }
    }
}

#[cfg(test)]
mod bnr_tests {
    use super::*;
    use crate::contract::check_weak_ordering;
    use crate::explore::{explore, Limits};
    use crate::machines::ScMachine;
    use weakord_core::HbMode;
    use weakord_progs::litmus;

    #[test]
    fn bnr_satisfies_the_contract() {
        let progs: Vec<Program> = litmus::all().into_iter().map(|l| l.program).collect();
        let report = check_weak_ordering(
            &BnrMachine,
            HbMode::Drf0,
            &progs,
            Limits::default(),
            crate::trace::TraceLimits::default(),
        );
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn bnr_behaviours_are_a_subset_of_def1s() {
        for lit in litmus::all() {
            let bnr = explore(&BnrMachine, &lit.program, Limits::default());
            let def1 = explore(&WoDef1Machine, &lit.program, Limits::default());
            assert!(
                bnr.outcomes.is_subset(&def1.outcomes),
                "{}: BNR produced something Def.1 cannot",
                lit.name
            );
            assert_eq!(bnr.deadlocks, 0, "{}", lit.name);
        }
    }

    #[test]
    fn bnr_still_relaxes_racy_data() {
        let lit = litmus::fig1_dekker();
        let ex = explore(&BnrMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().any(|o| (lit.non_sc)(o)));
        let sc = explore(&ScMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.is_superset(&sc.outcomes));
    }
}

impl Codec for WoState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.threads.encode(out);
        self.cache.encode(out);
        self.last_sync.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(WoState {
            threads: Vec::decode(r)?,
            cache: CacheState::decode(r)?,
            last_sync: Vec::decode(r)?,
        })
    }
}
