//! Lightweight simulation statistics: named counters and a latency
//! histogram.
//!
//! Both bags know how to [`Counters::export`] themselves into the
//! unified [`MetricsRegistry`](weakord_obs::MetricsRegistry), which is
//! the namespaced facade the CLI and bench harness read.

use std::collections::BTreeMap;
use std::fmt;
use weakord_obs::MetricsRegistry;

/// A bag of named monotonically increasing counters.
///
/// # Examples
///
/// ```
/// use weakord_sim::Counters;
/// let mut c = Counters::new();
/// c.add("messages", 3);
/// c.incr("messages");
/// assert_eq!(c.get("messages"), 4);
/// assert_eq!(c.get("unknown"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// An empty bag.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to a counter (creating it at zero).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.map.entry(name).or_insert(0) += n;
    }

    /// Adds one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (*k, *v))
    }

    /// Folds every counter into `reg` under the `ns.` prefix.
    pub fn export(&self, ns: &str, reg: &mut MetricsRegistry) {
        reg.absorb(ns, self.iter());
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k:<32} {v}")?;
        }
        Ok(())
    }
}

/// A power-of-two bucketed histogram of `u64` samples (latencies,
/// queue depths).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^(i-1), 2^i)` (bucket 0 counts
    /// zeros and ones).
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let bucket = (64 - sample.leading_zeros()) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += sample;
        self.max = self.max.max(sample);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `p`-th percentile (0–100), approximated from the
    /// power-of-two buckets: the answer is the inclusive upper bound of
    /// the bucket holding the rank-`⌈p·n/100⌉` sample, clamped to the
    /// true maximum. Exact for p=100; within a factor of two below the
    /// true value otherwise — good enough to separate "tail is the
    /// mean" from "tail is 100× the mean" in the bench tables.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket 0 holds only zeros; bucket i holds [2^(i-1), 2^i).
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Exports summary statistics as gauges under the `ns.` prefix
    /// (`ns.n`, `ns.mean`, `ns.p50`, `ns.p95`, `ns.p99`, `ns.max`).
    pub fn export(&self, ns: &str, reg: &mut MetricsRegistry) {
        reg.gauge(format!("{ns}.n"), self.count as f64);
        reg.gauge(format!("{ns}.mean"), self.mean());
        reg.gauge(format!("{ns}.p50"), self.percentile(50.0) as f64);
        reg.gauge(format!("{ns}.p95"), self.percentile(95.0) as f64);
        reg.gauge(format!("{ns}.p99"), self.percentile(99.0) as f64);
        reg.gauge(format!("{ns}.max"), self.max as f64);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p95={} p99={} max={}",
            self.count,
            self.mean(),
            self.percentile(50.0),
            self.percentile(95.0),
            self.percentile(99.0),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.incr("a");
        c.add("a", 2);
        c.incr("b");
        assert_eq!(c.get("a"), 3);
        assert_eq!(c.get("b"), 1);
        let pairs: Vec<_> = c.iter().collect();
        assert_eq!(pairs, vec![("a", 3), ("b", 1)]);
    }

    #[test]
    fn counters_display() {
        let mut c = Counters::new();
        c.add("msgs", 7);
        assert!(c.to_string().contains("msgs"));
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for s in [0, 1, 2, 4, 9] {
            h.record(s);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 9);
        assert_eq!(h.sum(), 16);
        assert!((h.mean() - 3.2).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn percentiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        // 99 small samples and one huge outlier.
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1000);
        // p50/p95 land in the bucket holding 4 ([4, 8) → upper bound 7).
        assert_eq!(h.percentile(50.0), 7);
        assert_eq!(h.percentile(95.0), 7);
        // p100 is exact; p99 still sits below the outlier's bucket here
        // (rank 99 of 100 is a `4`).
        assert_eq!(h.percentile(100.0), 1000);
        assert_eq!(h.percentile(99.0), 7);
        // Percentiles never exceed the true max.
        let mut one = Histogram::new();
        one.record(5);
        assert_eq!(one.percentile(50.0), 5);
        assert_eq!(one.percentile(99.0), 5);
    }

    #[test]
    fn percentile_of_zeros_is_zero() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(100.0), 0);
    }

    #[test]
    fn export_folds_into_the_registry() {
        let mut reg = weakord_obs::MetricsRegistry::new();
        let mut c = Counters::new();
        c.add("msgs", 7);
        c.export("sim", &mut reg);
        assert_eq!(reg.get("sim.msgs"), 7);

        let mut h = Histogram::new();
        h.record(4);
        h.record(8);
        h.export("sim.lat", &mut reg);
        assert_eq!(reg.get_gauge("sim.lat.n"), Some(2.0));
        assert_eq!(reg.get_gauge("sim.lat.max"), Some(8.0));
        assert!(reg.get_gauge("sim.lat.p50").is_some());
    }
}
