//! Crash-tolerance conformance: kill/resume equivalence, worker panic
//! isolation, and checkpoint corruption handling.
//!
//! The contract under test: killing an exploration at *any* checkpoint
//! boundary and resuming it produces exactly the outcome set, state
//! count, and deadlock count of an uninterrupted run — for every
//! shipped litmus file, with the partial-order reduction both off
//! (parallel engine) and on (sleep-set engine). The crash is injected
//! deterministically with [`CheckpointCfg::abort_after`], and the
//! resumed run is itself re-killed at its next checkpoint, so one loop
//! exercises every checkpoint boundary the run ever reaches.

use std::fs;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use weakord::mc::machines::{ScMachine, WoDef2Machine};
use weakord::mc::{
    explore, explore_checkpointed, explore_reduced, explore_reduced_checkpointed,
    resume_exploration, resume_reduced, CheckpointCfg, CheckpointError, Exploration, Label, Limits,
    Machine, TruncationReason,
};
use weakord::progs::{litmus, parse_program, Outcome, Program, ThreadState};

fn shipped_litmus_programs() -> Vec<Program> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut progs = Vec::new();
    for entry in fs::read_dir(dir).expect("litmus/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("litmus") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("readable");
        progs.push(parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display())));
    }
    progs.sort_by(|a, b| a.name.cmp(&b.name));
    assert!(progs.len() >= 7, "expected the shipped sample files, found {}", progs.len());
    progs
}

fn tmp_ckpt_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("weakord-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Semantic equality: everything an uninterrupted run guarantees.
fn assert_equivalent(resumed: &Exploration, oracle: &Exploration, ctx: &str) {
    assert_eq!(resumed.outcomes, oracle.outcomes, "{ctx}: outcome sets differ");
    assert_eq!(resumed.states, oracle.states, "{ctx}: state counts differ");
    assert_eq!(resumed.deadlocks, oracle.deadlocks, "{ctx}: deadlock counts differ");
    assert_eq!(
        resumed.stats.distinct_states, oracle.stats.distinct_states,
        "{ctx}: distinct_states differ"
    );
    assert_eq!(resumed.stats.truncation, None, "{ctx}: resumed run must complete");
}

/// Kills the run at its first checkpoint, then re-kills every resumed
/// leg at *its* first checkpoint, until the run completes — covering
/// every checkpoint boundary of the whole exploration.
#[test]
fn kill_resume_equivalence_across_litmus_files() {
    for prog in shipped_litmus_programs() {
        for reduce in [false, true] {
            let m = WoDef2Machine::default();
            let limits = if reduce {
                Limits { threads: 2, ..Limits::reduced() }
            } else {
                Limits::with_threads(2)
            };
            let oracle = if reduce {
                explore_reduced(&m, &prog, limits)
            } else {
                explore(&m, &prog, limits)
            };
            let ctx = format!("{} (reduce={reduce})", prog.name);
            let dir = tmp_ckpt_dir(&format!("{}-{}", prog.name, reduce));
            let mut cfg = CheckpointCfg::every(&dir, 40);
            cfg.abort_after = Some(1);
            let mut ex = if reduce {
                explore_reduced_checkpointed(&m, &prog, limits, &cfg)
            } else {
                explore_checkpointed(&m, &prog, limits, &cfg)
            }
            .unwrap_or_else(|e| panic!("{ctx}: first leg: {e}"));
            let mut legs = 0;
            while ex.stats.truncation == Some(TruncationReason::Resumable) {
                legs += 1;
                assert!(legs < 10_000, "{ctx}: resume loop did not converge");
                ex = if reduce {
                    resume_reduced(&m, &prog, limits, &cfg)
                } else {
                    resume_exploration(&m, &prog, limits, &cfg)
                }
                .unwrap_or_else(|e| panic!("{ctx}: leg {legs}: {e}"));
            }
            assert_equivalent(&ex, &oracle, &ctx);
            // A redundant resume of the *completed* checkpoint is a
            // no-op returning the same final answer.
            let again = if reduce {
                resume_reduced(&m, &prog, limits, &cfg)
            } else {
                resume_exploration(&m, &prog, limits, &cfg)
            }
            .unwrap_or_else(|e| panic!("{ctx}: idempotent resume: {e}"));
            assert_equivalent(&again, &oracle, &format!("{ctx} (idempotent resume)"));
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// Resuming under a different configuration must refuse cleanly.
#[test]
fn resume_refuses_mismatched_configuration() {
    let prog = litmus::fig1_dekker().program;
    let other = litmus::iriw().program;
    let m = WoDef2Machine::default();
    let dir = tmp_ckpt_dir("mismatch");
    let mut cfg = CheckpointCfg::every(&dir, 30);
    cfg.abort_after = Some(1);
    explore_checkpointed(&m, &prog, Limits::default(), &cfg).expect("first leg");
    // Different program.
    match resume_exploration(&m, &other, Limits::default(), &cfg) {
        Err(CheckpointError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
    // Different machine.
    match resume_exploration(&ScMachine, &prog, Limits::default(), &cfg) {
        Err(CheckpointError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
    // Different state cap.
    match resume_exploration(&m, &prog, Limits::with_max_states(7), &cfg) {
        Err(CheckpointError::ConfigMismatch { .. }) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
    // Wrong engine (reduced resume of a parallel checkpoint). Reduction
    // mode is part of the fingerprint, so this also refuses.
    match resume_reduced(&m, &prog, Limits::reduced(), &cfg) {
        Err(CheckpointError::ConfigMismatch { .. } | CheckpointError::EngineMismatch { .. }) => {}
        other => panic!("expected a mismatch error, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A corrupted checkpoint is a clean, actionable error — never a panic.
#[test]
fn corrupted_checkpoints_fail_cleanly() {
    let prog = litmus::fig1_dekker().program;
    let m = WoDef2Machine::default();
    let dir = tmp_ckpt_dir("corrupt");
    let cfg = CheckpointCfg::every(&dir, 0);
    explore_checkpointed(&m, &prog, Limits::default(), &cfg).expect("run");
    let file = cfg.file();
    let good = fs::read(&file).expect("checkpoint written");

    // Flip one payload byte: checksum failure.
    let mut bad = good.clone();
    let i = bad.len() - 3;
    bad[i] ^= 0xFF;
    fs::write(&file, &bad).unwrap();
    match resume_exploration(&m, &prog, Limits::default(), &cfg) {
        Err(CheckpointError::BadChecksum { .. }) => {}
        other => panic!("expected BadChecksum, got {other:?}"),
    }

    // Unknown format version (checksum recomputed to isolate the check).
    let mut bad = good.clone();
    bad[6] = 99;
    fs::write(&file, &bad).unwrap();
    match resume_exploration(&m, &prog, Limits::default(), &cfg) {
        Err(CheckpointError::BadVersion(99)) => {}
        other => panic!("expected BadVersion, got {other:?}"),
    }

    // Not a checkpoint at all.
    fs::write(&file, b"not a checkpoint").unwrap();
    match resume_exploration(&m, &prog, Limits::default(), &cfg) {
        Err(CheckpointError::BadMagic) => {}
        other => panic!("expected BadMagic, got {other:?}"),
    }

    // Truncated mid-payload, with a checksum matching the truncation
    // (simulates a torn-but-self-consistent file): malformed, not panic.
    let keep = good.len() / 2;
    let mut torn = good[..keep].to_vec();
    let sum = weakord::mc::checkpoint::fnv1a(&torn[16..]);
    torn[8..16].copy_from_slice(&sum.to_le_bytes());
    fs::write(&file, &torn).unwrap();
    match resume_exploration(&m, &prog, Limits::default(), &cfg) {
        Err(CheckpointError::Malformed(_)) => {}
        other => panic!("expected Malformed, got {other:?}"),
    }

    // Missing file: an I/O error naming the path.
    fs::remove_file(&file).unwrap();
    match resume_exploration(&m, &prog, Limits::default(), &cfg) {
        Err(CheckpointError::Io(p, _)) => assert_eq!(p, file),
        other => panic!("expected Io, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Worker panic isolation.
// ---------------------------------------------------------------------

/// Delegates to [`ScMachine`] but panics inside `successors` under a
/// test-controlled policy — the fault model for panic-isolation tests.
struct PanickyMachine {
    /// Panic on the nth, (n+1)th, … expansion calls.
    panic_from: usize,
    /// If true, panic only once; later calls succeed (a transient
    /// fault). If false, every call from `panic_from` on panics (all
    /// workers eventually die).
    one_shot: bool,
    calls: AtomicUsize,
    fired: AtomicBool,
}

impl PanickyMachine {
    fn new(panic_from: usize, one_shot: bool) -> Self {
        PanickyMachine {
            panic_from,
            one_shot,
            calls: AtomicUsize::new(0),
            fired: AtomicBool::new(false),
        }
    }
}

impl Machine for PanickyMachine {
    type State = <ScMachine as Machine>::State;

    fn name(&self) -> &'static str {
        "panicky-sc"
    }

    fn initial(&self, prog: &Program) -> Self::State {
        ScMachine.initial(prog)
    }

    fn successors(&self, prog: &Program, state: &Self::State, out: &mut Vec<(Label, Self::State)>) {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        if n >= self.panic_from && (!self.one_shot || !self.fired.swap(true, Ordering::SeqCst)) {
            panic!("injected worker fault at expansion {n}");
        }
        ScMachine.successors(prog, state, out);
    }

    fn outcome(&self, prog: &Program, state: &Self::State) -> Option<Outcome> {
        ScMachine.outcome(prog, state)
    }

    fn threads<'a>(&self, state: &'a Self::State) -> &'a [ThreadState] {
        ScMachine.threads(state)
    }
}

/// A transient panic retires one worker; the survivors finish the whole
/// exploration, the result matches the oracle, and the stats report the
/// absorbed panic without marking the run truncated.
#[test]
fn transient_worker_panic_degrades_without_losing_states() {
    let prog = litmus::iriw().program;
    let oracle = explore(&ScMachine, &prog, Limits::with_threads(2));
    let m = PanickyMachine::new(25, true);
    let ex = explore(&m, &prog, Limits::with_threads(2));
    assert_eq!(ex.stats.worker_panics, 1, "the panic is recorded");
    assert_eq!(ex.stats.truncation, None, "a survivable panic does not truncate");
    assert_eq!(ex.outcomes, oracle.outcomes);
    assert_eq!(ex.states, oracle.states);
    assert_eq!(ex.deadlocks, oracle.deadlocks);
}

/// When every worker dies, the run still neither aborts the process nor
/// deadlocks: it returns a lower bound marked `WorkerPanic`.
#[test]
fn total_worker_death_reports_worker_panic_truncation() {
    let prog = litmus::iriw().program;
    for threads in [1, 2, 4] {
        let m = PanickyMachine::new(25, false);
        let ex = explore(&m, &prog, Limits::with_threads(threads));
        assert_eq!(ex.stats.truncation, Some(TruncationReason::WorkerPanic), "{threads} threads");
        assert!(ex.truncated());
        assert_eq!(ex.stats.worker_panics as usize, threads, "every worker died once");
        assert!(ex.states > 0, "the partial visited set survives the panics");
    }
}

/// A panic mid-run does not poison the shard locks for a later pass:
/// the same engine data structures keep working (lock_clean absorbs
/// mutex poison), so a follow-up exploration is untainted.
#[test]
fn panics_do_not_poison_subsequent_runs() {
    let prog = litmus::fig1_dekker().program;
    let m = PanickyMachine::new(10, true);
    let _ = explore(&m, &prog, Limits::with_threads(2));
    // Fresh run on the same (now quiet) machine wrapper: full answer.
    let oracle = explore(&ScMachine, &prog, Limits::with_threads(2));
    let again = explore(&m, &prog, Limits::with_threads(2));
    assert_eq!(again.outcomes, oracle.outcomes);
    assert_eq!(again.states, oracle.states);
}

/// Checkpointing and panic isolation compose: a kill-and-resume over a
/// machine that panicked transiently still converges to the oracle.
#[test]
fn checkpointed_run_with_transient_panic_resumes_to_oracle() {
    let prog = litmus::iriw().program;
    let oracle = explore(&ScMachine, &prog, Limits::with_threads(2));
    let dir = tmp_ckpt_dir("panic-resume");
    let mut cfg = CheckpointCfg::every(&dir, 50);
    cfg.abort_after = Some(1);
    let m = PanickyMachine::new(30, true);
    let mut ex = explore_checkpointed(&m, &prog, Limits::with_threads(2), &cfg).expect("first leg");
    let mut legs = 0;
    while ex.stats.truncation == Some(TruncationReason::Resumable) {
        legs += 1;
        assert!(legs < 10_000);
        ex = resume_exploration(&m, &prog, Limits::with_threads(2), &cfg).expect("resume");
    }
    assert_eq!(ex.outcomes, oracle.outcomes);
    assert_eq!(ex.states, oracle.states);
    assert_eq!(ex.deadlocks, oracle.deadlocks);
    let _ = fs::remove_dir_all(&dir);
}
