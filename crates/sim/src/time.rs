//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in processor cycles.
///
/// # Examples
///
/// ```
/// use weakord_sim::Cycle;
/// let t = Cycle::new(10) + 5;
/// assert_eq!(t, Cycle::new(15));
/// assert_eq!(t - Cycle::new(10), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a time point.
    pub const fn new(t: u64) -> Self {
        Cycle(t)
    }

    /// The raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Saturating difference: `self - earlier`, or 0 if `earlier` is
    /// later.
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    fn sub(self, rhs: Cycle) -> u64 {
        self.0.checked_sub(rhs.0).expect("Cycle subtraction underflow")
    }
}

impl From<u64> for Cycle {
    fn from(t: u64) -> Self {
        Cycle(t)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut t = Cycle::ZERO;
        t += 7;
        assert_eq!(t.get(), 7);
        assert_eq!((t + 3) - t, 3);
        assert_eq!(t.since(Cycle::new(10)), 0);
        assert_eq!(Cycle::new(10).since(t), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }

    #[test]
    fn display() {
        assert_eq!(Cycle::new(42).to_string(), "@42");
    }
}
