//! The operational machine-model interface.
//!
//! A [`Machine`] is a nondeterministic transition system over program
//! states: the memory system decides *when* issued accesses become
//! visible, and exhaustive exploration of those decisions (see
//! [`crate::explore`]) yields every observable [`Outcome`] the hardware
//! can produce for a program. Definition 2's "appears sequentially
//! consistent" then becomes a set-inclusion check against the
//! interleaving machine.

use std::fmt;
use std::hash::Hash;

use weakord_core::{Loc, OpKind, ProcId, Value};
use weakord_progs::{Outcome, Program, ThreadEvent, ThreadState};

/// A memory operation as completed by a machine transition, for trace
/// reconstruction and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Issuing processor.
    pub proc: ProcId,
    /// Operation kind.
    pub kind: OpKind,
    /// Location accessed.
    pub loc: Loc,
    /// Value the read component returned, if any.
    pub read_value: Option<Value>,
    /// Value the write component stored, if any.
    pub written_value: Option<Value>,
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.proc)?;
        match self.kind {
            OpKind::DataRead => write!(f, "R({})", self.loc)?,
            OpKind::SyncRead => write!(f, "Test({})", self.loc)?,
            OpKind::DataWrite => write!(f, "W({})", self.loc)?,
            OpKind::SyncWrite => write!(f, "Set({})", self.loc)?,
            OpKind::SyncRmw => write!(f, "RMW({})", self.loc)?,
        }
        if let Some(v) = self.read_value {
            write!(f, " -> {v}")?;
        }
        if let Some(v) = self.written_value {
            write!(f, " <- {v}")?;
        }
        Ok(())
    }
}

/// What one transition did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// A thread's memory operation completed architecturally.
    Op(OpRecord),
    /// An internal hardware step (write-buffer drain, in-flight message
    /// delivery, invalidation application).
    Internal,
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Op(rec) => rec.fmt(f),
            Label::Internal => f.write_str("(internal: delivery/drain)"),
        }
    }
}

/// An operational model of a multiprocessor memory system.
///
/// States must be canonical (`Eq`/`Hash` identify genuinely identical
/// configurations) so exploration can deduplicate them.
///
/// The `Sync` supertrait and the `Send + Sync` state bounds let the
/// parallel explorer ([`crate::explore`]) share one machine across its
/// worker threads and move states between their frontiers. Machine
/// implementations and their states are plain data (no interior
/// mutability, no shared handles), so both bounds auto-derive.
pub trait Machine: Sync {
    /// The machine's state: thread states plus memory-system contents.
    type State: Clone + Eq + Hash + fmt::Debug + Send + Sync;

    /// Short display name, e.g. `"sc"` or `"wo-def2"`.
    fn name(&self) -> &'static str;

    /// The initial state for a program (threads at instruction 0, memory
    /// zeroed, all queues empty).
    fn initial(&self, prog: &Program) -> Self::State;

    /// Appends every enabled transition from `state` to `out` (cleared
    /// by the caller). An empty set on a non-final state is a deadlock.
    fn successors(&self, prog: &Program, state: &Self::State, out: &mut Vec<(Label, Self::State)>);

    /// Returns the observable outcome if `state` is terminal: all
    /// threads halted *and* all internal queues drained (every write
    /// performed everywhere).
    fn outcome(&self, prog: &Program, state: &Self::State) -> Option<Outcome>;
}

/// Advances a thread, transparently completing `Delay` events (they are
/// timing artifacts with no semantic content for exhaustive
/// exploration). Returns the next real event.
pub fn advance_skipping_delays(
    ts: &mut ThreadState,
    thread: &weakord_progs::Thread,
) -> ThreadEvent {
    loop {
        match ts.advance(thread) {
            ThreadEvent::Delay(_) => ts.complete(thread, None),
            other => return other,
        }
    }
}

/// Builds an [`Outcome`] from halted thread states and a final-memory
/// snapshot. Returns `None` unless every thread has halted.
pub fn outcome_if_halted(threads: &[ThreadState], memory: Vec<Value>) -> Option<Outcome> {
    threads
        .iter()
        .all(ThreadState::is_halted)
        .then(|| Outcome { regs: threads.iter().map(ThreadState::regs).collect(), memory })
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakord_progs::{Access, Reg, ThreadBuilder};

    #[test]
    fn delays_are_skipped() {
        let mut t = ThreadBuilder::new();
        t.delay(10);
        t.delay(20);
        t.read(Reg::new(0), Loc::new(0));
        t.halt();
        let thread = t.finish();
        let mut ts = ThreadState::new();
        match advance_skipping_delays(&mut ts, &thread) {
            ThreadEvent::Access(Access::Read { .. }) => {}
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn outcome_requires_all_halted() {
        let mut t = ThreadBuilder::new();
        t.halt();
        let thread = t.finish();
        let mut halted = ThreadState::new();
        assert_eq!(halted.advance(&thread), ThreadEvent::Halted);
        let running = ThreadState::new();
        assert!(outcome_if_halted(&[halted.clone()], vec![]).is_some());
        assert!(outcome_if_halted(&[halted, running], vec![]).is_none());
    }
}
