//! Differential conformance under interconnect faults.
//!
//! The fault layer only ever *delays* the protocol (drops are repaired
//! by bounded retransmission, duplicates are filtered at the receiver),
//! so the paper's guarantees must survive it verbatim: every program
//! terminates under every fault schedule with eventual delivery, and
//! DRF0 programs still land inside the SC outcome set (Definition 2)
//! with Lemma 1 holding on the observed trace — under both the queueing
//! and the NACK/retry legs of Section 5.1.
//!
//! The fault rates are environment-overridable so CI can sweep a
//! (policy × drop-rate × seed) grid over the same test body:
//! `WEAKORD_FAULT_DROP`, `WEAKORD_FAULT_DUP`, `WEAKORD_FAULT_REORDER`,
//! `WEAKORD_FAULT_SPIKE` (all permille), and `WEAKORD_FAULT_SEED`.

use std::collections::BTreeSet;

use weakord::coherence::{BlockedReason, CoherentMachine, Config, NetModel, Policy, RunError};
use weakord::core::HbMode;
use weakord::mc::machines::ScMachine;
use weakord::mc::{check_program_drf, explore, Limits, TraceLimits};
use weakord::progs::workloads::{fig3_scenario, Fig3Params};
use weakord::progs::{litmus, parse_program, Outcome, Program};
use weakord::sim::FaultPlan;

fn load(file: &str) -> Program {
    let path = format!(concat!(env!("CARGO_MANIFEST_DIR"), "/litmus/{}"), file);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_program(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn env_rate(name: &str, default: u32) -> u32 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_seed() -> u64 {
    std::env::var("WEAKORD_FAULT_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xFA01)
}

/// The schedule grid: ≥ 8 distinct seeded fault plans, every one with
/// eventual delivery (drops bounded by retransmission).
fn fault_schedules() -> Vec<FaultPlan> {
    let base = env_seed();
    let drop = env_rate("WEAKORD_FAULT_DROP", 40);
    let dup = env_rate("WEAKORD_FAULT_DUP", 40);
    let reorder = env_rate("WEAKORD_FAULT_REORDER", 60);
    let spike = env_rate("WEAKORD_FAULT_SPIKE", 20);
    (0..8).map(|i| FaultPlan::with_rates(base ^ (i * 0x9E37), drop, dup, reorder, spike)).collect()
}

fn programs() -> Vec<(Program, bool)> {
    let mut progs: Vec<(Program, bool)> =
        litmus::all().into_iter().map(|l| (l.program, l.drf0)).collect();
    // The shipped sample files ride along, classified on the fly.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    for entry in std::fs::read_dir(dir).expect("litmus/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("litmus") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable");
        let prog = parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let drf0 = check_program_drf(&prog, HbMode::Drf0, TraceLimits::default()).is_race_free();
        progs.push((prog, drf0));
    }
    // The paper's Figure 3 scenario (DRF0 by construction).
    progs.push((fig3_scenario(Fig3Params::default()), true));
    progs
}

fn policies() -> [Policy; 2] {
    [Policy::def2(), Policy::def2_nack()]
}

fn run_under(
    prog: &Program,
    policy: Policy,
    faults: FaultPlan,
    seed: u64,
) -> weakord::coherence::RunResult {
    let cfg = Config {
        policy,
        seed,
        network: NetModel::General { min: 5, max: 90 },
        faults,
        record_trace: true,
        ..Config::default()
    };
    CoherentMachine::new(prog, cfg).run().unwrap_or_else(|e| {
        panic!("{} under {} fault-seed {:#x}: {e}", prog.name, policy.name(), faults.seed)
    })
}

/// Every shipped program × both sync policies × every fault schedule
/// terminates, and DRF0 programs produce only SC-reachable outcomes
/// (checked against the exhaustive SC explorer) with Lemma 1 intact.
#[test]
fn faulted_runs_of_drf0_programs_stay_inside_the_sc_outcome_set() {
    let schedules = fault_schedules();
    assert!(schedules.len() >= 8);
    for (prog, drf0) in &programs() {
        let sc_outcomes: Option<BTreeSet<Outcome>> = drf0.then(|| {
            let sc = explore(&ScMachine, prog, Limits::default());
            assert!(!sc.truncated(), "{}", prog.name);
            sc.outcomes
        });
        for policy in policies() {
            for (i, &faults) in schedules.iter().enumerate() {
                let r = run_under(prog, policy, faults, 7 + i as u64);
                let Some(sc) = &sc_outcomes else { continue };
                assert!(
                    sc.contains(&r.outcome),
                    "{} under {} fault-seed {:#x}: outcome not SC-reachable\n{}",
                    prog.name,
                    policy.name(),
                    faults.seed,
                    r.outcome
                );
                r.check_appears_sc(HbMode::Drf0).unwrap_or_else(|v| {
                    panic!(
                        "{} under {} fault-seed {:#x}: {v}",
                        prog.name,
                        policy.name(),
                        faults.seed
                    )
                });
            }
        }
    }
}

/// The layer is provably active: across the grid the machine records
/// injected drops and duplicate filtering, and under the NACK policy
/// the sync ping-pong program actually bounces.
#[test]
fn fault_injection_and_the_nack_leg_actually_fire() {
    let faults = FaultPlan::with_rates(env_seed(), 80, 80, 80, 40);
    let prog = load("nack-livelock.litmus");
    let mut drops = 0u64;
    let mut dups = 0u64;
    let mut nacks = 0u64;
    for seed in 0..8 {
        for policy in policies() {
            let r = run_under(&prog, policy, faults, seed);
            drops += r.counters.get("fault-drops");
            dups += r.counters.get("fault-dups-filtered");
            if policy == Policy::def2_nack() {
                nacks += r.counters.get("nacks");
            }
        }
    }
    assert!(drops > 0, "no drops injected across the whole grid");
    assert!(dups > 0, "no duplicates filtered across the whole grid");
    assert!(nacks > 0, "the NACK leg never fired on a lock ping-pong");
}

/// A fault-free run is byte-identical to one with an inert fault plan:
/// the fault layer draws from its own RNG stream and an inert plan
/// draws nothing at all.
#[test]
fn inert_fault_plan_leaves_runs_unchanged() {
    for (prog, _) in &programs() {
        for policy in policies() {
            let base = run_under(prog, policy, FaultPlan::none(), 3);
            let inert = run_under(prog, policy, FaultPlan::with_rates(0xDEAD, 0, 0, 0, 0), 3);
            assert_eq!(base.outcome, inert.outcome, "{}", prog.name);
            assert_eq!(base.cycles, inert.cycles, "{}", prog.name);
        }
    }
}

/// Exhausting the cycle budget yields a structured [`StallReport`]
/// naming what every processor is blocked on — never a bare timeout.
///
/// [`StallReport`]: weakord::coherence::StallReport
#[test]
fn a_timeout_carries_a_stall_report_naming_the_blocked_resource() {
    let prog = load("mp-handshake.litmus");
    let cfg = Config {
        policy: Policy::def2(),
        seed: 1,
        network: NetModel::General { min: 20, max: 60 },
        max_cycles: 30,
        ..Config::default()
    };
    let err = CoherentMachine::new(&prog, cfg).run().expect_err("30 cycles cannot finish");
    let report = err.stall_report().expect("timeout carries a report");
    assert_eq!(report.procs.len(), prog.n_procs());
    assert!(report.blocked().count() > 0, "someone must be blocked:\n{report}");
    for p in report.blocked() {
        assert!(
            !matches!(p.reason, BlockedReason::Running | BlockedReason::Halted),
            "blocked() returned a non-blocked processor"
        );
    }
    // The rendering names the resource, not just the fact of blocking.
    let text = err.to_string();
    assert!(
        text.contains("waiting-on") || text.contains("in-flight") || text.contains("retrying"),
        "unhelpful report:\n{text}"
    );
}

/// The no-progress watchdog fires long before the cycle budget when
/// nothing completes, and its report carries the same diagnosis.
#[test]
fn the_livelock_watchdog_trips_with_a_structured_report() {
    let prog = load("mp-handshake.litmus");
    let cfg = Config {
        policy: Policy::def2(),
        seed: 1,
        network: NetModel::General { min: 50, max: 90 },
        stall_window: Some(10),
        ..Config::default()
    };
    let err = CoherentMachine::new(&prog, cfg).run().expect_err("the first fill takes ≥50 cycles");
    match &err {
        RunError::Stalled { window, report } => {
            assert_eq!(*window, 10);
            assert!(report.blocked().count() > 0, "{report}");
            assert!(report.at.get() <= 100, "watchdog fired far too late: {}", report.at);
        }
        other => panic!("expected the watchdog, got {other}"),
    }
}
