//! Idealized executions.
//!
//! Section 4 of the paper defines the happens-before relation over an
//! execution of a program "on an abstract, idealized architecture where
//! all memory accesses are executed atomically and in program order".
//! Such an execution is simply a total interleaving of the processors'
//! operations; [`IdealizedExecution`] stores exactly that, in completion
//! order.
//!
//! The paper further *augments* every idealized execution with
//! hypothetical operations accounting for the initial and final state of
//! memory; [`IdealizedExecution::augment`] performs that construction.

use std::collections::BTreeMap;
use std::fmt;

use crate::ids::{Loc, OpId, ProcId, Value};
use crate::op::MemOp;

/// Error returned when assembling or validating an execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A program operation used the reserved augmentation location.
    ReservedLocation(OpId),
    /// A processor id was out of range for the declared processor count.
    ProcOutOfRange {
        /// The offending operation.
        op: OpId,
        /// Its out-of-range processor.
        proc: ProcId,
        /// The declared processor count.
        n_procs: u16,
    },
    /// A read returned a value inconsistent with atomic, in-order memory
    /// semantics.
    NotAtomic {
        /// The offending read.
        read: OpId,
        /// The value it returned (`None` = no value recorded).
        got: Option<Value>,
        /// The value atomic memory would have supplied.
        want: Value,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::ReservedLocation(op) => {
                write!(f, "operation {op} uses the reserved augmentation location")
            }
            ExecError::ProcOutOfRange { op, proc, n_procs } => {
                write!(f, "operation {op} issued by {proc} but execution has {n_procs} processors")
            }
            ExecError::NotAtomic { read, got, want } => match got {
                Some(got) => {
                    write!(f, "read {read} returned {got} but atomic memory would supply {want}")
                }
                None => write!(f, "read {read} has no value; atomic memory would supply {want}"),
            },
        }
    }
}

impl std::error::Error for ExecError {}

/// A total interleaving of atomically-executed memory operations.
///
/// Operations are stored in *completion order* — the order in which they
/// executed on the idealized architecture. Program order per processor is
/// the restriction of completion order to that processor (the idealized
/// architecture executes each processor's accesses in program order).
///
/// # Examples
///
/// Build the passing Figure 2(a)-style execution fragment `W(x); S(a)`
/// on `P0` followed by `S(a); R(x)` on `P1`:
///
/// ```
/// use weakord_core::{ExecBuilder, Loc, ProcId, Value};
/// let x = Loc::new(0);
/// let a = Loc::new(1);
/// let p0 = ProcId::new(0);
/// let p1 = ProcId::new(1);
/// let mut b = ExecBuilder::new(2);
/// b.data_write(p0, x, Value::new(1));
/// b.sync_rmw(p0, a);
/// b.sync_rmw(p1, a);
/// b.data_read(p1, x);
/// let exec = b.finish()?;
/// assert_eq!(exec.len(), 4);
/// assert_eq!(exec.op(weakord_core::OpId::new(3)).read_value, Some(Value::new(1)));
/// # Ok::<(), weakord_core::ExecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdealizedExecution {
    ops: Vec<MemOp>,
    n_procs: u16,
    per_proc: Vec<Vec<OpId>>,
}

impl IdealizedExecution {
    /// Number of operations in the execution.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the execution contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of processors the execution was declared with.
    pub fn n_procs(&self) -> usize {
        self.n_procs as usize
    }

    /// All operations in completion order.
    pub fn ops(&self) -> &[MemOp] {
        &self.ops
    }

    /// Looks up one operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: OpId) -> &MemOp {
        &self.ops[id.index()]
    }

    /// The operations of `proc` in program order.
    pub fn proc_ops(&self, proc: ProcId) -> &[OpId] {
        &self.per_proc[proc.index()]
    }

    /// Iterates over the distinct data locations accessed (excluding the
    /// reserved augmentation location), in ascending order.
    pub fn locations(&self) -> Vec<Loc> {
        let mut locs: Vec<Loc> =
            self.ops.iter().map(|op| op.loc).filter(|l| !l.is_augment()).collect();
        locs.sort_unstable();
        locs.dedup();
        locs
    }

    /// Computes the final memory state: for every accessed location, the
    /// value of the last write in completion order (locations never
    /// written hold [`Value::ZERO`]).
    pub fn final_memory(&self) -> BTreeMap<Loc, Value> {
        let mut mem: BTreeMap<Loc, Value> =
            self.locations().into_iter().map(|l| (l, Value::ZERO)).collect();
        for op in &self.ops {
            if op.loc.is_augment() {
                continue;
            }
            if let Some(v) = op.written_value {
                mem.insert(op.loc, v);
            }
        }
        mem
    }

    /// Checks that every read returns the value of the last preceding
    /// write to the same location in completion order (initial values are
    /// [`Value::ZERO`]). This is what "executed atomically and in program
    /// order" demands of the value function.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::NotAtomic`] naming the first offending read.
    pub fn check_atomic_values(&self) -> Result<(), ExecError> {
        let mut mem: BTreeMap<Loc, Value> = BTreeMap::new();
        for op in &self.ops {
            if op.kind.has_read() {
                let want = mem.get(&op.loc).copied().unwrap_or(Value::ZERO);
                if op.read_value != Some(want) {
                    return Err(ExecError::NotAtomic { read: op.id, got: op.read_value, want });
                }
            }
            if let Some(v) = op.written_value {
                mem.insert(op.loc, v);
            }
        }
        Ok(())
    }

    /// Produces the augmented execution of Section 4: a hypothetical
    /// prefix in which processor 0 initializes every location (with
    /// [`Value::ZERO`]) and synchronizes on a special location, followed
    /// by a synchronization on that location by every other processor;
    /// and an analogous suffix of synchronizations followed by final
    /// reads of every location by processor 0.
    ///
    /// The hypothetical synchronization operations are read-modify-writes
    /// so that they order in both directions under refined models that
    /// pair releases (write components) with acquires (read components).
    #[must_use]
    pub fn augment(&self) -> IdealizedExecution {
        let locs = self.locations();
        let n = self.n_procs.max(1);
        let p0 = ProcId::new(0);
        let aug = Loc::AUGMENT;
        let mut b = ExecBuilder::with_capacity(n, self.ops.len() + 2 * locs.len() + 4 * n as usize);
        b.allow_reserved = true;
        let hyp = |mut op: MemOp| {
            op.hypothetical = true;
            op
        };
        // Prefix: init writes, then P0's sync, then everyone else's sync.
        for &l in &locs {
            b.push_raw(hyp(MemOp::data_write(p0, l, Value::ZERO)));
        }
        b.push_raw(hyp(rmw(p0, aug)));
        for p in 1..n {
            b.push_raw(hyp(rmw(ProcId::new(p), aug)));
        }
        // The actual execution, verbatim.
        for op in &self.ops {
            b.push_raw(*op);
        }
        // Suffix: everyone else's sync, then P0's sync, then final reads.
        for p in 1..n {
            b.push_raw(hyp(rmw(ProcId::new(p), aug)));
        }
        b.push_raw(hyp(rmw(p0, aug)));
        for &l in &locs {
            b.push_raw(hyp(MemOp::data_read(p0, l)));
        }
        b.finish().expect("augmentation of a valid execution is valid")
    }

    /// Constructs an execution directly from completed operations in
    /// completion order, reassigning ids and program-order indices.
    ///
    /// Unlike [`ExecBuilder`], this does **not** recompute read values —
    /// use it for executions observed on real (possibly non-atomic)
    /// hardware whose value function is part of the observation.
    ///
    /// # Errors
    ///
    /// Returns an error if an operation uses the reserved location or an
    /// out-of-range processor.
    pub fn from_observed(n_procs: u16, ops: Vec<MemOp>) -> Result<Self, ExecError> {
        let mut b = ExecBuilder::with_capacity(n_procs, ops.len());
        b.fill_values = false;
        for op in ops {
            b.push_raw(op);
        }
        b.finish()
    }
}

fn rmw(proc: ProcId, loc: Loc) -> MemOp {
    MemOp { read_value: Some(Value::ZERO), ..MemOp::sync_rmw(proc, loc, Some(Value::ZERO)) }
}

/// Incremental builder for [`IdealizedExecution`].
///
/// Operations are appended in completion order; the builder assigns ids
/// and per-processor program-order indices, and (by default) runs atomic
/// memory semantics to fill in read values that were not supplied.
#[derive(Debug, Clone)]
pub struct ExecBuilder {
    ops: Vec<MemOp>,
    n_procs: u16,
    fill_values: bool,
    allow_reserved: bool,
}

impl ExecBuilder {
    /// Creates a builder for an execution of `n_procs` processors.
    pub fn new(n_procs: u16) -> Self {
        ExecBuilder::with_capacity(n_procs, 16)
    }

    /// Like [`ExecBuilder::new`] with a capacity hint.
    pub fn with_capacity(n_procs: u16, cap: usize) -> Self {
        ExecBuilder {
            ops: Vec::with_capacity(cap),
            n_procs,
            fill_values: true,
            allow_reserved: false,
        }
    }

    /// Disables atomic value filling; recorded values are kept as-is.
    pub fn keep_values(&mut self) -> &mut Self {
        self.fill_values = false;
        self
    }

    /// Appends an operation as the next completed access.
    pub fn push(&mut self, op: MemOp) -> &mut Self {
        self.push_raw(op);
        self
    }

    fn push_raw(&mut self, op: MemOp) {
        self.ops.push(op);
    }

    /// Appends a data read by `proc` on `loc`.
    pub fn data_read(&mut self, proc: ProcId, loc: Loc) -> &mut Self {
        self.push(MemOp::data_read(proc, loc))
    }

    /// Appends a data write.
    pub fn data_write(&mut self, proc: ProcId, loc: Loc, value: Value) -> &mut Self {
        self.push(MemOp::data_write(proc, loc, value))
    }

    /// Appends a read-only synchronization operation.
    pub fn sync_read(&mut self, proc: ProcId, loc: Loc) -> &mut Self {
        self.push(MemOp::sync_read(proc, loc))
    }

    /// Appends a write-only synchronization operation storing `1`.
    pub fn sync_write(&mut self, proc: ProcId, loc: Loc) -> &mut Self {
        self.push(MemOp::sync_write(proc, loc, Value::new(1)))
    }

    /// Appends a read-modify-write synchronization operation storing `1`
    /// (a `TestAndSet`).
    pub fn sync_rmw(&mut self, proc: ProcId, loc: Loc) -> &mut Self {
        self.push(MemOp::sync_rmw(proc, loc, Some(Value::new(1))))
    }

    /// Finalizes the execution.
    ///
    /// # Errors
    ///
    /// Returns an error if any operation uses the reserved augmentation
    /// location (unless building an augmentation) or an out-of-range
    /// processor id.
    pub fn finish(mut self) -> Result<IdealizedExecution, ExecError> {
        let mut per_proc: Vec<Vec<OpId>> = vec![Vec::new(); self.n_procs as usize];
        let mut mem: BTreeMap<Loc, Value> = BTreeMap::new();
        for (i, op) in self.ops.iter_mut().enumerate() {
            let id = OpId::new(i as u32);
            op.id = id;
            if op.loc.is_augment() && !self.allow_reserved {
                return Err(ExecError::ReservedLocation(id));
            }
            let p = op.proc;
            let Some(slot) = per_proc.get_mut(p.index()) else {
                return Err(ExecError::ProcOutOfRange { op: id, proc: p, n_procs: self.n_procs });
            };
            op.po_index = slot.len() as u32;
            slot.push(id);
            if self.fill_values {
                if op.kind.has_read() && op.read_value.is_none() {
                    op.read_value = Some(mem.get(&op.loc).copied().unwrap_or(Value::ZERO));
                }
                if let Some(v) = op.written_value {
                    mem.insert(op.loc, v);
                }
            }
        }
        Ok(IdealizedExecution { ops: self.ops, n_procs: self.n_procs, per_proc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: ProcId = ProcId::new(0);
    const P1: ProcId = ProcId::new(1);

    fn x() -> Loc {
        Loc::new(0)
    }

    fn s() -> Loc {
        Loc::new(1)
    }

    #[test]
    fn builder_assigns_ids_and_po_indices() {
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x(), Value::new(1));
        b.data_read(P1, x());
        b.data_read(P0, x());
        let e = b.finish().unwrap();
        assert_eq!(e.len(), 3);
        assert_eq!(e.op(OpId::new(0)).po_index, 0);
        assert_eq!(e.op(OpId::new(2)).po_index, 1); // P0's second op
        assert_eq!(e.proc_ops(P0), &[OpId::new(0), OpId::new(2)]);
        assert_eq!(e.proc_ops(P1), &[OpId::new(1)]);
    }

    #[test]
    fn builder_fills_atomic_read_values() {
        let mut b = ExecBuilder::new(2);
        b.data_read(P1, x()); // before any write: initial value
        b.data_write(P0, x(), Value::new(7));
        b.data_read(P1, x());
        let e = b.finish().unwrap();
        assert_eq!(e.op(OpId::new(0)).read_value, Some(Value::ZERO));
        assert_eq!(e.op(OpId::new(2)).read_value, Some(Value::new(7)));
        e.check_atomic_values().unwrap();
    }

    #[test]
    fn rmw_reads_and_writes() {
        let mut b = ExecBuilder::new(1);
        b.sync_rmw(P0, s());
        b.sync_rmw(P0, s());
        let e = b.finish().unwrap();
        assert_eq!(e.op(OpId::new(0)).read_value, Some(Value::ZERO));
        assert_eq!(e.op(OpId::new(1)).read_value, Some(Value::new(1)));
    }

    #[test]
    fn reserved_location_rejected() {
        let mut b = ExecBuilder::new(1);
        b.push(MemOp::data_read(P0, Loc::AUGMENT));
        assert!(matches!(b.finish(), Err(ExecError::ReservedLocation(_))));
    }

    #[test]
    fn out_of_range_proc_rejected() {
        let mut b = ExecBuilder::new(1);
        b.data_read(P1, x());
        assert!(matches!(b.finish(), Err(ExecError::ProcOutOfRange { .. })));
    }

    #[test]
    fn final_memory_is_last_write() {
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x(), Value::new(1));
        b.data_write(P1, x(), Value::new(2));
        b.data_read(P0, s());
        let e = b.finish().unwrap();
        let mem = e.final_memory();
        assert_eq!(mem[&x()], Value::new(2));
        assert_eq!(mem[&s()], Value::ZERO); // read but never written
    }

    #[test]
    fn check_atomic_values_flags_stale_read() {
        let mut ops = Vec::new();
        ops.push(MemOp::data_write(P0, x(), Value::new(1)));
        let mut r = MemOp::data_read(P1, x());
        r.read_value = Some(Value::ZERO); // stale: should be 1
        ops.push(r);
        let e = IdealizedExecution::from_observed(2, ops).unwrap();
        let err = e.check_atomic_values().unwrap_err();
        assert!(matches!(err, ExecError::NotAtomic { want, .. } if want == Value::new(1)));
    }

    #[test]
    fn augment_brackets_the_execution() {
        let mut b = ExecBuilder::new(2);
        b.data_write(P0, x(), Value::new(1));
        b.data_read(P1, x());
        let e = b.finish().unwrap();
        let a = e.augment();
        // 1 loc init write + 2 syncs + 2 original + 2 syncs + 1 final read.
        assert_eq!(a.len(), 8);
        assert!(a.ops()[1].loc.is_augment());
        assert!(a.ops()[2].loc.is_augment());
        assert!(a.ops()[a.len() - 2].loc.is_augment());
        // Locations report excludes the augmentation location.
        assert_eq!(a.locations(), vec![x()]);
        // Final memory unchanged by augmentation.
        assert_eq!(a.final_memory(), e.final_memory());
    }

    #[test]
    fn augment_of_empty_execution() {
        let e = ExecBuilder::new(3).finish().unwrap();
        let a = e.augment();
        // No locations: just 3 prefix syncs + 3 suffix syncs.
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn from_observed_keeps_values() {
        let mut r = MemOp::data_read(P0, x());
        r.read_value = Some(Value::new(42)); // not atomic; kept verbatim
        let e = IdealizedExecution::from_observed(1, vec![r]).unwrap();
        assert_eq!(e.op(OpId::new(0)).read_value, Some(Value::new(42)));
    }
}
