//! The operational machine models.
//!
//! | Machine | Paper artifact | Sync support |
//! |---------|----------------|--------------|
//! | [`ScMachine`] | Lamport's definition; the reference | n/a (everything atomic) |
//! | [`WriteBufferMachine`] | Figure 1 configs 1 & 3 (bus, write buffers) | none |
//! | [`TsoMachine`] | SPARC/x86 TSO (write buffer + fences/RMW as ordering points) | full |
//! | [`PsoMachine`] | SPARC PSO (per-location buffers, STBAR) | full |
//! | [`NetReorderMachine`] | Figure 1 config 2 (network, no caches) | none |
//! | [`CacheDelayMachine`] | Figure 1 config 4 (caches + network) | none |
//! | [`WoDef1Machine`] | Definition 1 (Dubois/Scheurich/Briggs) | issuer stalls |
//! | [`BnrMachine`] | BNR'89 timestamp scheme (Section 2.2) | global drain |
//! | [`WoDef2Machine`] | Section 5 implementation (Definition 2 w.r.t. DRF0) | next synchronizer stalls |

mod cache_delay;
mod net_reorder;
mod pso;
mod sc;
pub mod substrate;
mod tso;
mod wo;
mod write_buffer;

pub use cache_delay::{CacheDelayMachine, CdState};
pub use net_reorder::{NetReorderMachine, NetState};
pub use pso::{PsoMachine, PsoState};
pub use sc::{ScMachine, ScState};
pub use tso::{TsoMachine, TsoState};
pub use wo::{BnrMachine, WoDef1Machine, WoDef2Machine, WoState};
pub use write_buffer::{WbState, WriteBufferMachine};

/// The parallel explorer moves states between worker threads and shares
/// machines across them, so every state type must stay `Send + Sync`
/// (plain data, no interior mutability). Checked here at compile time
/// so a regression fails this module, not a distant explorer bound.
const _: () = {
    const fn state<T: Send + Sync + Clone + Eq + std::hash::Hash>() {}
    state::<ScState>();
    state::<WbState>();
    state::<TsoState>();
    state::<PsoState>();
    state::<NetState>();
    state::<CdState>();
    state::<WoState>();
};
