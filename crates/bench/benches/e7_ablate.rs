//! E7 / ablations: strict vs parallel data forwarding, miss caps, and
//! interconnect models on the Figure 3 scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use weakord_bench::experiments;
use weakord_coherence::{CoherentMachine, Config, NetModel, Policy};
use weakord_progs::workloads::{fig3_scenario, Fig3Params};

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e7_ablations().render());
    let prog = fig3_scenario(Fig3Params {
        work_before_release: 20,
        work_after_release: 300,
        extra_writes: 8,
        consumer_work: 20,
    });
    let mut group = c.benchmark_group("e7_ablate");
    for (name, strict) in [("parallel", false), ("strict", true)] {
        group.bench_function(format!("forwarding/{name}"), |b| {
            b.iter(|| {
                let cfg = Config {
                    policy: Policy::def2(),
                    seed: 7,
                    strict_data: strict,
                    ..Config::default()
                };
                CoherentMachine::new(black_box(&prog), cfg).run().expect("runs").cycles
            })
        });
    }
    for (name, cap) in [("uncapped", None), ("cap1", Some(1))] {
        group.bench_function(format!("miss-cap/{name}"), |b| {
            b.iter(|| {
                let cfg = Config {
                    policy: Policy::Def2 { drf1_refined: false, miss_cap: cap },
                    seed: 7,
                    ..Config::default()
                };
                CoherentMachine::new(black_box(&prog), cfg).run().expect("runs").cycles
            })
        });
    }
    for (name, network) in [
        ("bus", NetModel::Bus { cycles: 4 }),
        ("crossbar", NetModel::Crossbar { cycles: 12 }),
        ("general", NetModel::General { min: 20, max: 60 }),
    ] {
        group.bench_function(format!("network/{name}"), |b| {
            b.iter(|| {
                let cfg = Config { policy: Policy::def2(), network, seed: 7, ..Config::default() };
                CoherentMachine::new(black_box(&prog), cfg).run().expect("runs").cycles
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    // Keep full-workspace bench runs quick: the quantities of interest
    // (cycle counts, message counts) are deterministic; wall-clock
    // timing is secondary.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
