//! E6 / Section 5.3 termination: time the liveness sweep (every
//! workload × policy finishing without deadlock).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use weakord_bench::experiments;
use weakord_coherence::{CoherentMachine, Config, Policy};
use weakord_progs::workloads::{producer_consumer, spinlock, PcParams, SpinlockParams};

fn bench(c: &mut Criterion) {
    println!("{}", experiments::e6_termination(3).render());
    let mut group = c.benchmark_group("e6_termination");
    let spin = spinlock(SpinlockParams::default());
    let pc = producer_consumer(PcParams::default());
    for policy in [Policy::Def1, Policy::def2()] {
        group.bench_function(format!("spinlock/{}", policy.name()), |b| {
            b.iter(|| {
                let cfg = Config { policy, seed: 3, ..Config::default() };
                CoherentMachine::new(black_box(&spin), cfg).run().expect("terminates").cycles
            })
        });
        group.bench_function(format!("producer-consumer/{}", policy.name()), |b| {
            b.iter(|| {
                let cfg = Config { policy, seed: 3, ..Config::default() };
                CoherentMachine::new(black_box(&pc), cfg).run().expect("terminates").cycles
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    // Keep full-workspace bench runs quick: the quantities of interest
    // (cycle counts, message counts) are deterministic; wall-clock
    // timing is secondary.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
criterion_main!(benches);
