//! Property tests for the formal framework: the fast algorithms must
//! agree with the naive reference constructions, and the paper's
//! theorems must hold on random executions.

// Gated: compiling this suite needs the external `proptest` crate,
// which hermetic builds cannot fetch. Enable with `--features proptest`
// after restoring the dev-dependency (see DESIGN.md).
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use weakord_core::{
    check_appears_sc, check_drf_preaugmented, detect_races, hb_relation, ExecBuilder,
    HappensBefore, HbMode, IdealizedExecution, Loc, MemOp, OpId, ProcId, Value,
};

/// One raw operation choice for the random-execution strategy.
#[derive(Debug, Clone, Copy)]
struct RawOp {
    proc: u16,
    kind: u8,
    loc: u32,
    value: u64,
}

fn raw_op(n_procs: u16, n_locs: u32) -> impl Strategy<Value = RawOp> {
    (0..n_procs, 0u8..5, 0..n_locs, 1u64..4).prop_map(|(proc, kind, loc, value)| RawOp {
        proc,
        kind,
        loc,
        value,
    })
}

fn build_exec(n_procs: u16, raw: &[RawOp]) -> IdealizedExecution {
    let mut b = ExecBuilder::new(n_procs);
    for r in raw {
        let p = ProcId::new(r.proc);
        let l = Loc::new(r.loc);
        match r.kind {
            0 => b.push(MemOp::data_read(p, l)),
            1 => b.push(MemOp::data_write(p, l, Value::new(r.value))),
            2 => b.push(MemOp::sync_read(p, l)),
            3 => b.push(MemOp::sync_write(p, l, Value::new(r.value))),
            _ => b.push(MemOp::sync_rmw(p, l, Some(Value::new(r.value)))),
        };
    }
    b.finish().expect("random execution is well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The vector-clock happens-before agrees with the explicit
    /// transitive closure of po ∪ so on every pair, in both modes.
    #[test]
    fn hb_vector_clocks_match_naive_closure(
        raw in proptest::collection::vec(raw_op(3, 4), 0..24),
    ) {
        let exec = build_exec(3, &raw);
        for mode in [HbMode::Drf0, HbMode::Drf1] {
            let hb = HappensBefore::compute(&exec, mode);
            let naive = hb_relation(&exec, mode);
            for a in 0..exec.len() as u32 {
                for b in 0..exec.len() as u32 {
                    prop_assert_eq!(
                        hb.ordered(OpId::new(a), OpId::new(b)),
                        naive.contains(OpId::new(a), OpId::new(b)),
                        "mode {:?} pair ({},{})", mode, a, b
                    );
                }
            }
        }
    }

    /// The online detector and the pairwise Definition 3 checker agree
    /// on whether an (augmented) execution is race-free.
    #[test]
    fn online_detector_agrees_with_pairwise_checker(
        raw in proptest::collection::vec(raw_op(3, 4), 0..32),
    ) {
        let exec = build_exec(3, &raw).augment();
        for mode in [HbMode::Drf0, HbMode::Drf1] {
            let pairwise = check_drf_preaugmented(&exec, mode).is_race_free();
            let online = detect_races(&exec, mode).is_empty();
            prop_assert_eq!(pairwise, online, "mode {:?}", mode);
        }
    }

    /// Executions assembled by the builder satisfy atomic, in-order
    /// memory semantics by construction.
    #[test]
    fn builder_fills_atomic_values(
        raw in proptest::collection::vec(raw_op(4, 5), 0..40),
    ) {
        let exec = build_exec(4, &raw);
        prop_assert!(exec.check_atomic_values().is_ok());
    }

    /// Lemma 1, soundness direction: an atomic (idealized) execution of
    /// a race-free history always appears sequentially consistent.
    #[test]
    fn race_free_atomic_executions_appear_sc(
        raw in proptest::collection::vec(raw_op(3, 4), 0..28),
    ) {
        let exec = build_exec(3, &raw);
        if check_drf_preaugmented(&exec.augment(), HbMode::Drf0).is_race_free() {
            prop_assert!(check_appears_sc(&exec, HbMode::Drf0).is_ok());
        }
    }

    /// Augmentation is observation-preserving: the final memory is
    /// unchanged and the augmented execution is still atomic-legal.
    #[test]
    fn augmentation_preserves_observations(
        raw in proptest::collection::vec(raw_op(3, 4), 0..24),
    ) {
        let exec = build_exec(3, &raw);
        let aug = exec.augment();
        prop_assert_eq!(exec.final_memory(), aug.final_memory());
        prop_assert!(aug.check_atomic_values().is_ok());
        prop_assert_eq!(
            weakord_core::ExecResult::of(&exec),
            weakord_core::ExecResult::of(&aug)
        );
    }

    /// DRF1's happens-before is a subrelation of DRF0's: anything DRF1
    /// orders, DRF0 orders too.
    #[test]
    fn drf1_hb_is_subrelation_of_drf0_hb(
        raw in proptest::collection::vec(raw_op(3, 4), 0..24),
    ) {
        let exec = build_exec(3, &raw);
        let hb0 = HappensBefore::compute(&exec, HbMode::Drf0);
        let hb1 = HappensBefore::compute(&exec, HbMode::Drf1);
        for a in 0..exec.len() as u32 {
            for b in 0..exec.len() as u32 {
                if hb1.ordered(OpId::new(a), OpId::new(b)) {
                    prop_assert!(hb0.ordered(OpId::new(a), OpId::new(b)));
                }
            }
        }
    }

    /// Happens-before never orders against completion time in an
    /// idealized execution: if a hb b then a completed before b.
    #[test]
    fn hb_respects_completion_order(
        raw in proptest::collection::vec(raw_op(3, 4), 0..24),
    ) {
        let exec = build_exec(3, &raw);
        let hb = HappensBefore::compute(&exec, HbMode::Drf0);
        for a in 0..exec.len() as u32 {
            for b in 0..a {
                // b completed before a, so a must not happen-before b... i.e.
                // any hb pair (x, y) must have x.index() < y.index().
                prop_assert!(!hb.ordered(OpId::new(a), OpId::new(b)));
            }
        }
    }
}

fn random_relation() -> impl Strategy<Value = weakord_core::Relation> {
    (1usize..24, proptest::collection::vec((0u32..24, 0u32..24), 0..60)).prop_map(|(n, pairs)| {
        let mut r = weakord_core::Relation::new(n);
        for (a, b) in pairs {
            let (a, b) = (a as usize % n, b as usize % n);
            r.add(OpId::new(a as u32), OpId::new(b as u32));
        }
        r
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transitive closure is idempotent and monotone.
    #[test]
    fn closure_laws(r in random_relation()) {
        let c = r.transitive_closure();
        prop_assert_eq!(c.transitive_closure(), c.clone());
        for (a, b) in r.iter() {
            prop_assert!(c.contains(a, b), "closure lost a pair");
        }
    }

    /// A topological order exists iff the relation is acyclic, and when
    /// it exists it respects every pair.
    #[test]
    fn topological_order_laws(r in random_relation()) {
        match r.topological_order() {
            None => prop_assert!(!r.is_acyclic()),
            Some(order) => {
                prop_assert!(r.is_acyclic());
                prop_assert_eq!(order.len(), r.len());
                let pos = |x: OpId| order.iter().position(|&o| o == x).unwrap();
                for (a, b) in r.iter() {
                    if a != b {
                        prop_assert!(pos(a) < pos(b), "order violates ({a}, {b})");
                    }
                }
            }
        }
    }

    /// Union is commutative and closure distributes over consistency:
    /// `consistent_with` is symmetric.
    #[test]
    fn union_and_consistency_are_symmetric(a in random_relation(), b in random_relation()) {
        if a.len() == b.len() {
            prop_assert_eq!(a.union(&b), b.union(&a));
            prop_assert_eq!(a.consistent_with(&b), b.consistent_with(&a));
        }
    }

    /// Every atomic idealized execution is serializable (the identity
    /// order witnesses it), whatever the program shape.
    #[test]
    fn atomic_executions_are_serializable(
        raw in proptest::collection::vec(raw_op(3, 3), 0..14),
    ) {
        let exec = build_exec(3, &raw);
        prop_assert!(weakord_core::is_execution_serializable(&exec));
    }

    /// Serializability is invariant under the interleaving chosen: any
    /// reordering of an atomic execution that keeps per-processor order
    /// and read values intact stays explainable... conversely, breaking
    /// one read's value usually (not always) breaks it; at minimum the
    /// checker never panics and stays deterministic.
    #[test]
    fn serializability_is_deterministic(
        raw in proptest::collection::vec(raw_op(3, 3), 0..12),
    ) {
        let exec = build_exec(3, &raw);
        let a = weakord_core::is_execution_serializable(&exec);
        let b = weakord_core::is_execution_serializable(&exec);
        prop_assert_eq!(a, b);
    }
}
