//! Partial store ordering: TSO with the global store-buffer FIFO
//! relaxed to one FIFO *per location*. Data writes to different
//! locations may reach memory in either order (W→W is relaxed on top
//! of TSO's W→R), while same-location writes stay ordered, preserving
//! coherence. Fences, synchronization accesses and atomic
//! read-modify-writes still drain all of the issuer's buffers and
//! execute against memory — the SPARC PSO discipline (STBAR).

use std::collections::VecDeque;

use weakord_core::{Loc, ProcId, Value};

use crate::checkpoint::{Codec, DecodeError, Reader};
use weakord_progs::{Access, Outcome, Program, ThreadEvent, ThreadState};

use crate::machine::{
    advance_skipping_delays, outcome_if_halted, pooled_clone, DeliveryClass, InternalStep, Label,
    Machine, OpRecord, ReductionClass, SyncGate,
};

/// The PSO machine. Strictly weaker than [`crate::machines::TsoMachine`]
/// (any global-FIFO drain schedule is also a legal per-location
/// schedule) and strictly stronger than the cache-substrate machines:
/// memory itself is still one atomic array, so stores are multi-copy
/// atomic and IRIW-style splits remain impossible.
#[derive(Debug, Clone, Copy, Default)]
pub struct PsoMachine;

/// State of [`PsoMachine`]: per-processor, **per-location** FIFO write
/// buffers. Indexing by location (rather than one deque of tagged
/// entries) makes states canonical: two interleavings that buffered the
/// same writes to different locations in different orders are the same
/// hardware configuration.
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct PsoState {
    /// Architectural thread states.
    pub threads: Vec<ThreadState>,
    /// Memory behind the buffers.
    pub mem: Vec<Value>,
    /// `buffers[proc][loc]` is the FIFO of values `proc` has written to
    /// `loc` that have not yet reached memory.
    pub buffers: Vec<Vec<VecDeque<Value>>>,
}

impl PsoState {
    fn buffers_empty(&self, t: usize) -> bool {
        self.buffers[t].iter().all(VecDeque::is_empty)
    }
}

/// Hand-written so `clone_from` reuses the nested buffer allocations
/// (the derived impl's `clone_from` falls back to a fresh clone):
/// overwriting a recycled state is then a handful of memcpys, which is
/// what makes [`Machine::successors_into`]'s pooling worthwhile.
impl Clone for PsoState {
    fn clone(&self) -> Self {
        PsoState {
            threads: self.threads.clone(),
            mem: self.mem.clone(),
            buffers: self.buffers.clone(),
        }
    }
    fn clone_from(&mut self, src: &Self) {
        self.threads.clone_from(&src.threads);
        self.mem.clone_from(&src.mem);
        self.buffers.clone_from(&src.buffers);
    }
}

impl Machine for PsoMachine {
    type State = PsoState;

    fn name(&self) -> &'static str {
        "pso"
    }

    fn initial(&self, prog: &Program) -> PsoState {
        PsoState {
            threads: weakord_progs::initial_threads(prog),
            mem: vec![Value::ZERO; prog.n_locs as usize],
            buffers: vec![vec![VecDeque::new(); prog.n_locs as usize]; prog.n_procs()],
        }
    }

    fn successors(&self, prog: &Program, state: &PsoState, out: &mut Vec<(Label, PsoState)>) {
        self.succs(prog, state, out, &mut Vec::new());
    }

    fn successors_into(
        &self,
        prog: &Program,
        state: &PsoState,
        out: &mut Vec<(Label, PsoState)>,
        pool: &mut Vec<PsoState>,
    ) {
        self.succs(prog, state, out, pool);
    }

    fn outcome(&self, _prog: &Program, state: &PsoState) -> Option<Outcome> {
        if !(0..state.buffers.len()).all(|t| state.buffers_empty(t)) {
            return None;
        }
        outcome_if_halted(&state.threads, state.mem.clone())
    }

    fn threads<'a>(&self, state: &'a PsoState) -> &'a [ThreadState] {
        &state.threads
    }

    fn reduction_class(&self) -> ReductionClass {
        // Identical argument to TSO: all gating is on the issuer's own
        // buffers; drains write the single shared memory.
        ReductionClass { sync_gate: SyncGate::None, delivery: DeliveryClass::Memory }
    }
}

impl PsoMachine {
    /// The single successor body behind both trait entry points:
    /// scratch states come from `pool` and every path that abandons one
    /// puts it back.
    fn succs(
        &self,
        prog: &Program,
        state: &PsoState,
        out: &mut Vec<(Label, PsoState)>,
        pool: &mut Vec<PsoState>,
    ) {
        // Thread transitions.
        for t in 0..state.threads.len() {
            if state.threads[t].is_halted() {
                continue;
            }
            let thread = &prog.threads[t];
            let mut next = pooled_clone(pool, state);
            let access = match advance_skipping_delays(&mut next.threads[t], thread) {
                ThreadEvent::Access(access) => access,
                ThreadEvent::Fence => {
                    // STBAR/MFENCE: waits for every per-location buffer
                    // of the issuer to drain.
                    if !next.buffers_empty(t) {
                        pool.push(next);
                        continue;
                    }
                    next.threads[t].complete(thread, None);
                    out.push((Label::Internal(InternalStep::fence(ProcId::new(t as u16))), next));
                    continue;
                }
                // The advance reached Halt: keep the halted thread state.
                _ => {
                    out.push((Label::Internal(InternalStep::halt(ProcId::new(t as u16))), next));
                    continue;
                }
            };
            // Every synchronization access is an ordering point: it
            // waits for all of the issuer's buffers and bypasses them.
            if access.is_sync() && !next.buffers_empty(t) {
                pool.push(next);
                continue;
            }
            let proc = ProcId::new(t as u16);
            let kind = access.op_kind();
            let loc = access.loc();
            match access {
                Access::Read { sync, .. } => {
                    // Store→load forwarding from the newest buffered
                    // write to the same location.
                    let v = if sync {
                        next.mem[loc.index()]
                    } else {
                        next.buffers[t][loc.index()]
                            .back()
                            .copied()
                            .unwrap_or(next.mem[loc.index()])
                    };
                    next.threads[t].complete(thread, Some(v));
                    let rec =
                        OpRecord { proc, kind, loc, read_value: Some(v), written_value: None };
                    out.push((Label::Op(rec), next));
                }
                Access::Write { value, sync, .. } => {
                    if sync {
                        next.mem[loc.index()] = value;
                    } else {
                        next.buffers[t][loc.index()].push_back(value);
                    }
                    next.threads[t].complete(thread, None);
                    let rec =
                        OpRecord { proc, kind, loc, read_value: None, written_value: Some(value) };
                    out.push((Label::Op(rec), next));
                }
                Access::Rmw { op, .. } => {
                    // Buffers already drained (is_sync gate above).
                    let old = next.mem[loc.index()];
                    let new = op.apply(old);
                    next.mem[loc.index()] = new;
                    next.threads[t].complete(thread, Some(old));
                    let rec = OpRecord {
                        proc,
                        kind,
                        loc,
                        read_value: Some(old),
                        written_value: Some(new),
                    };
                    out.push((Label::Op(rec), next));
                }
            }
        }
        // Per-location buffer drains: any non-empty (proc, loc) FIFO
        // may retire its oldest write to memory.
        for t in 0..state.buffers.len() {
            for l in 0..state.buffers[t].len() {
                if state.buffers[t][l].is_empty() {
                    continue;
                }
                let mut next = pooled_clone(pool, state);
                let v = next.buffers[t][l].pop_front().expect("non-empty");
                next.mem[l] = v;
                let loc = Loc::new(l as u32);
                out.push((Label::Internal(InternalStep::drain(ProcId::new(t as u16), loc)), next));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Limits};
    use crate::machines::{ScMachine, TsoMachine};
    use weakord_core::Loc;
    use weakord_progs::{litmus, Reg, ThreadBuilder};

    #[test]
    fn mp_violation_is_possible() {
        // The flag write may drain before the data write: the W→W
        // relaxation TSO forbids.
        let lit = litmus::mp();
        let ex = explore(&PsoMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().any(|o| (lit.non_sc)(o)), "PSO must allow stale-data MP");
        assert_eq!(ex.deadlocks, 0);
    }

    #[test]
    fn fenced_mp_is_sequentially_consistent() {
        // W data; STBAR; W flag ‖ R flag; R data.
        let mut t0 = ThreadBuilder::new();
        t0.write(Loc::new(0), 42u64);
        t0.fence();
        t0.write(Loc::new(1), 1u64);
        t0.halt();
        let mut t1 = ThreadBuilder::new();
        t1.read(Reg::new(0), Loc::new(1));
        t1.read(Reg::new(1), Loc::new(0));
        t1.halt();
        let prog = Program::new("mp+fence", vec![t0.finish(), t1.finish()], 2).unwrap();
        let pso = explore(&PsoMachine, &prog, Limits::default());
        let sc = explore(&ScMachine, &prog, Limits::default());
        assert_eq!(pso.outcomes, sc.outcomes, "a fence between the writes restores SC");
    }

    #[test]
    fn sync_mp_is_sequentially_consistent() {
        let lit = litmus::mp_sync();
        let ex = explore(&PsoMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().all(|o| !(lit.non_sc)(o)), "PSO honors Set/Test ordering");
    }

    #[test]
    fn same_location_writes_stay_coherent() {
        // CoWW/CoRR: the per-location FIFO forbids reordering x=1, x=2.
        let lit = litmus::coherence_corr();
        let ex = explore(&PsoMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().all(|o| !(lit.non_sc)(o)), "PSO broke per-location coherence");
    }

    #[test]
    fn iriw_split_stays_forbidden() {
        // Memory is one atomic array: stores are multi-copy atomic, so
        // the two readers cannot disagree on the write order.
        let lit = litmus::iriw();
        let ex = explore(&PsoMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().all(|o| !(lit.non_sc)(o)), "PSO must forbid the IRIW split");
    }

    #[test]
    fn outcome_set_contains_tso_and_sc() {
        // The Definition 2 containment chain, machine-pair by pair.
        for lit in litmus::all() {
            let sc = explore(&ScMachine, &lit.program, Limits::default());
            let tso = explore(&TsoMachine, &lit.program, Limits::default());
            let pso = explore(&PsoMachine, &lit.program, Limits::default());
            assert!(tso.outcomes.is_subset(&pso.outcomes), "{}: TSO ⊄ PSO", lit.name);
            assert!(sc.outcomes.is_subset(&pso.outcomes), "{}: SC ⊄ PSO", lit.name);
        }
    }
}

impl Codec for PsoState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.threads.encode(out);
        self.mem.encode(out);
        self.buffers.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PsoState { threads: Vec::decode(r)?, mem: Vec::decode(r)?, buffers: Vec::decode(r)? })
    }
}
