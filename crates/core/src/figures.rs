//! Transcriptions of the paper's Figure 2 executions.
//!
//! Figure 2 of the paper shows two idealized executions: (a) obeys DRF0
//! (every conflicting pair is ordered by happens-before through
//! intervening synchronization), while (b) violates it — per the
//! caption, "the accesses of P0 conflict with the write of P1 but are
//! not ordered with respect to it by happens-before. Similarly, the
//! writes by P2 and P4 conflict, but are unordered."
//!
//! The figure is a two-dimensional timing diagram; these functions are
//! faithful transcriptions into completion-order operation lists,
//! reconstructed to exhibit exactly the properties the caption states.

use crate::exec::{ExecBuilder, IdealizedExecution};
use crate::ids::{Loc, ProcId, Value};

fn p(i: u16) -> ProcId {
    ProcId::new(i)
}

/// Figure 2(a): a six-processor execution that obeys DRF0.
///
/// Data locations `x`, `y`, `z` are each written by one processor and
/// read by another, with synchronization operations on `a`, `b`, `c`
/// bracketing every conflicting pair:
///
/// * `P1` writes `x`; `P0` reads it after synchronizing on `a`.
/// * `P2` writes `y`; `P4` reads it after a release chain
///   `S(a)`→`S(b)` through `P3`.
/// * `P2` writes `z`; `P3` reads it after synchronizing on `b`, and
///   `P5` reads it after a further chain through `c`.
///
/// # Examples
///
/// ```
/// use weakord_core::{check_drf, figures, HbMode};
/// assert!(check_drf(&figures::figure_2a(), HbMode::Drf0).is_race_free());
/// ```
pub fn figure_2a() -> IdealizedExecution {
    let (x, y, z) = (Loc::new(0), Loc::new(1), Loc::new(2));
    let (a, b_, c) = (Loc::new(10), Loc::new(11), Loc::new(12));
    let v = Value::new(1);
    let mut b = ExecBuilder::new(6);
    b.data_write(p(1), x, v); //  P1: W(x)
    b.data_write(p(2), y, v); //  P2: W(y)
    b.sync_rmw(p(1), a); //       P1: S(a)   releases W(x)
    b.sync_rmw(p(0), a); //       P0: S(a)   acquires
    b.data_read(p(0), x); //      P0: R(x)
    b.data_write(p(2), z, v); //  P2: W(z)
    b.sync_rmw(p(2), b_); //      P2: S(b)   releases W(y), W(z)
    b.sync_rmw(p(3), b_); //      P3: S(b)   acquires
    b.data_read(p(3), z); //      P3: R(z)
    b.sync_rmw(p(3), c); //       P3: S(c)   releases (chains b -> c)
    b.sync_rmw(p(4), c); //       P4: S(c)   acquires
    b.data_read(p(4), y); //      P4: R(y)
    b.sync_rmw(p(5), c); //       P5: S(c)   acquires (after P4's S(c))
    b.data_read(p(5), z); //      P5: R(z)
    b.finish().expect("figure 2a is well-formed")
}

/// Figure 2(b): a five-processor execution that violates DRF0.
///
/// `P0` reads `y` with no synchronization at all, conflicting unordered
/// with `P1`'s write of `y`; and `P2` and `P4` both write `y` but
/// synchronize on *different* locations (`a` vs `b`), so their writes
/// conflict unordered as well — exactly the two violations the paper's
/// caption names.
///
/// # Examples
///
/// ```
/// use weakord_core::{check_drf, figures, HbMode};
/// let report = check_drf(&figures::figure_2b(), HbMode::Drf0);
/// assert!(!report.is_race_free());
/// ```
pub fn figure_2b() -> IdealizedExecution {
    let y = Loc::new(1);
    let (a, b_) = (Loc::new(10), Loc::new(11));
    let v = Value::new(1);
    let mut b = ExecBuilder::new(5);
    b.data_read(p(0), y); //      P0: R(y)  — unsynchronized
    b.data_write(p(1), y, v); //  P1: W(y)  — races with P0's reads
    b.sync_rmw(p(1), a); //       P1: S(a)
    b.sync_rmw(p(2), a); //       P2: S(a)
    b.data_write(p(2), y, v); //  P2: W(y)  — ordered after P1's W(y) via a
    b.data_read(p(0), y); //      P0: R(y)  — still unsynchronized
    b.sync_rmw(p(3), b_); //      P3: S(b)
    b.sync_rmw(p(4), b_); //      P4: S(b)
    b.data_write(p(4), y, v); //  P4: W(y)  — unordered vs P2's W(y)
    b.finish().expect("figure 2b is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drf0::check_drf;
    use crate::hb::HbMode;
    use crate::ids::OpId;

    #[test]
    fn figure_2a_every_conflict_ordered() {
        let report = check_drf(&figure_2a(), HbMode::Drf0);
        assert!(report.is_race_free(), "{report}");
        assert!(report.conflicting_pairs >= 6);
    }

    #[test]
    fn figure_2b_names_the_captioned_races() {
        let e = figure_2b();
        let report = check_drf(&e, HbMode::Drf0);
        // The checker runs on the augmented execution; map race ids back
        // through it. The augmentation prefixes |locs| init writes plus
        // n_procs syncs before the original operations.
        let aug = e.augment();
        let offset = aug.len() - e.len() - (e.n_procs() - 1) - 1 - e.locations().len();
        let orig = |id: OpId| {
            let i = id.index();
            (i >= offset && i < offset + e.len()).then(|| OpId::new((i - offset) as u32))
        };
        let mut pairs: Vec<(u32, u32)> = report
            .races
            .iter()
            .filter_map(|r| Some((orig(r.first)?.index() as u32, orig(r.second)?.index() as u32)))
            .collect();
        pairs.sort_unstable();
        // P0's two reads (ops 0 and 5) race with P1's write (op 1), P2's
        // write (op 4) and P4's write (op 8); P2's and P4's writes race
        // with each other, and P1's write races with P4's.
        assert!(pairs.contains(&(0, 1)), "P0 R(y) vs P1 W(y): {pairs:?}");
        assert!(pairs.contains(&(4, 8)), "P2 W(y) vs P4 W(y): {pairs:?}");
    }

    #[test]
    fn figure_executions_are_atomic_legal() {
        figure_2a().check_atomic_values().unwrap();
        figure_2b().check_atomic_values().unwrap();
    }
}
