//! Differential testing of the two exploration engines.
//!
//! The parallel engine ([`explore`]) must be observationally identical
//! to the sequential reference ([`explore_seq`]): for every machine ×
//! program pair, the same outcome set, distinct-state count, and
//! deadlock count — at every worker count. Visit order is the only
//! thing allowed to differ, and the full-state visited set makes visit
//! order unobservable.
//!
//! The partial-order-reduced searches ([`explore_reduced`] and the
//! [`Reduction::Ample`] knob) join the same differential: they must
//! produce the identical outcome set and deadlock count as the full
//! sequential reference on every machine × program pair, while never
//! visiting more states.
//!
//! Also pins down the truncation contract (`truncated` flips exactly
//! when the state space exceeds `max_states`) and run-to-run
//! determinism of the parallel engine.

use std::fs;
use std::path::PathBuf;

use weakord_mc::machines::{
    BnrMachine, CacheDelayMachine, NetReorderMachine, ScMachine, WoDef1Machine, WoDef2Machine,
    WriteBufferMachine,
};
use weakord_mc::{
    explore, explore_reduced, explore_seq, Exploration, Limits, Machine, TruncationReason,
};
use weakord_progs::{gen, litmus, parse_program, Program};

/// Worker counts every differential pair is exercised at.
const THREADS: [usize; 3] = [1, 2, 8];

/// Every shipped `litmus/*.litmus` file, parsed.
fn litmus_files() -> Vec<Program> {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../litmus"));
    let mut progs = Vec::new();
    for entry in fs::read_dir(&dir).expect("litmus/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("litmus") {
            continue;
        }
        let src = fs::read_to_string(&path).expect("readable");
        progs.push(parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display())));
    }
    assert!(progs.len() >= 6, "expected the shipped corpus, found {}", progs.len());
    progs
}

/// The full differential suite: shipped litmus files plus the in-code
/// litmus tests plus a few generated programs (race-free and racy).
fn suite() -> Vec<Program> {
    let mut progs = litmus_files();
    progs.extend(litmus::all().into_iter().map(|l| l.program));
    for seed in 0..3 {
        progs.push(gen::race_free(seed, gen::GenParams::default()));
        progs.push(gen::racy(seed, gen::GenParams::default()));
    }
    progs
}

fn assert_engines_agree<M: Machine>(machine: &M, prog: &Program) {
    let seq = explore_seq(machine, prog, Limits::default());
    assert!(!seq.truncated(), "{}/{}: suite programs must fit the cap", machine.name(), prog.name);
    for threads in THREADS {
        let par = explore(machine, prog, Limits::with_threads(threads));
        assert_eq!(
            par,
            seq,
            "{} × {} diverged at {} threads (seq: {} states / {} outcomes / {} deadlocks; \
             par: {} states / {} outcomes / {} deadlocks)",
            machine.name(),
            prog.name,
            threads,
            seq.states,
            seq.outcomes.len(),
            seq.deadlocks,
            par.states,
            par.outcomes.len(),
            par.deadlocks,
        );
    }
}

#[test]
fn every_machine_agrees_on_every_program() {
    for prog in suite() {
        assert_engines_agree(&ScMachine, &prog);
        assert_engines_agree(&WriteBufferMachine, &prog);
        assert_engines_agree(&NetReorderMachine, &prog);
        assert_engines_agree(&CacheDelayMachine, &prog);
        assert_engines_agree(&BnrMachine, &prog);
        assert_engines_agree(&WoDef1Machine, &prog);
        assert_engines_agree(&WoDef2Machine::default(), &prog);
        assert_engines_agree(&WoDef2Machine { drf1_refined: true }, &prog);
    }
}

fn assert_reduction_agrees<M: Machine>(machine: &M, prog: &Program) {
    let seq = explore_seq(machine, prog, Limits::default());
    assert!(!seq.truncated(), "{}/{}: suite programs must fit the cap", machine.name(), prog.name);
    // The dedicated sleep-set engine, and the ample filter inside each
    // of the two general engines: all three reduced searches must agree
    // with the full search on everything observable, in no more states.
    let red = explore_reduced(machine, prog, Limits::default());
    let seq_ample = explore_seq(machine, prog, Limits::reduced());
    let par_ample = explore(machine, prog, Limits { threads: 4, ..Limits::reduced() });
    for (engine, ex) in [("reduced", &red), ("seq+ample", &seq_ample), ("par+ample", &par_ample)] {
        assert_eq!(
            ex.outcomes,
            seq.outcomes,
            "{} × {} ({engine}): outcome sets must be identical",
            machine.name(),
            prog.name,
        );
        assert_eq!(
            ex.deadlocks,
            seq.deadlocks,
            "{} × {} ({engine}): deadlock counts must be identical",
            machine.name(),
            prog.name,
        );
        assert!(
            ex.states <= seq.states,
            "{} × {} ({engine}): reduced visited {} states, full only {}",
            machine.name(),
            prog.name,
            ex.states,
            seq.states,
        );
        assert!(!ex.truncated(), "{} × {} ({engine})", machine.name(), prog.name);
    }
    // Sleep sets prune arcs the ample filter alone cannot, so the
    // dedicated engine is never worse than the knob.
    assert!(red.states <= seq_ample.states, "{} × {}", machine.name(), prog.name);
}

#[test]
fn reduced_search_is_a_sound_differential_twin() {
    for prog in suite() {
        assert_reduction_agrees(&ScMachine, &prog);
        assert_reduction_agrees(&WriteBufferMachine, &prog);
        assert_reduction_agrees(&NetReorderMachine, &prog);
        assert_reduction_agrees(&CacheDelayMachine, &prog);
        assert_reduction_agrees(&BnrMachine, &prog);
        assert_reduction_agrees(&WoDef1Machine, &prog);
        assert_reduction_agrees(&WoDef2Machine::default(), &prog);
        assert_reduction_agrees(&WoDef2Machine { drf1_refined: true }, &prog);
    }
}

/// The committed reduction floor: on the contended spinlock the
/// `wo-bnr` machine's reduced search must keep visiting at most a third
/// of the full search's states, and at least a fifth of the expanded
/// arcs must be pruned. A regression below either bound means an ample
/// rule was weakened.
#[test]
fn reduction_ratio_floor_on_the_spinlock_kernel() {
    use weakord_progs::workloads::{spinlock, SpinlockParams};
    let prog = spinlock(SpinlockParams {
        n_procs: 3,
        sections_per_proc: 1,
        writes_per_section: 2,
        think: 0,
    });
    let full = explore_seq(&BnrMachine, &prog, Limits::default());
    let red = explore_reduced(&BnrMachine, &prog, Limits::default());
    assert_eq!(red.outcomes, full.outcomes);
    assert_eq!(red.deadlocks, full.deadlocks);
    assert!(
        red.states * 3 <= full.states,
        "reduction regressed: {} of {} states",
        red.states,
        full.states
    );
    assert!(
        red.stats.reduction_ratio() >= 0.20,
        "reduction ratio regressed below the committed floor: {:.2}",
        red.stats.reduction_ratio()
    );
}

#[test]
fn parallel_runs_are_deterministic() {
    // Same program, same limits, repeated runs: the outcome set, state
    // count, and deadlock count never wobble, whatever the scheduler
    // does to the workers.
    let prog = litmus::fig1_dekker().program;
    let first = explore(&WoDef2Machine::default(), &prog, Limits::with_threads(8));
    for _ in 0..10 {
        let again = explore(&WoDef2Machine::default(), &prog, Limits::with_threads(8));
        assert_eq!(again, first);
    }
}

#[test]
fn truncation_flips_exactly_at_the_state_cap() {
    let prog = litmus::fig1_dekker().program;
    let machine = WoDef2Machine::default();
    let full = explore_seq(&machine, &prog, Limits::default());
    let total = full.states;
    assert!(total > 2, "need a nontrivial space for a boundary test");
    for (cap, expect_truncated) in [(total - 1, true), (total, false), (total + 1, false)] {
        let seq = explore_seq(&machine, &prog, Limits::with_max_states(cap));
        let par =
            explore(&machine, &prog, Limits { max_states: cap, threads: 8, ..Limits::default() });
        for (engine, ex) in [("seq", &seq), ("par", &par)] {
            assert_eq!(
                ex.truncated(),
                expect_truncated,
                "{engine}: cap {cap} of {total} states, truncated={}",
                ex.truncated()
            );
            assert_eq!(ex.states, total.min(cap), "{engine}: states at cap {cap}");
            assert_eq!(
                ex.stats.truncation,
                expect_truncated.then_some(TruncationReason::MaxStates),
                "{engine}: reason at cap {cap}"
            );
        }
        if !expect_truncated {
            assert_eq!(par, seq, "non-truncated runs are fully identical");
            assert_eq!(par.outcomes, full.outcomes);
        }
    }
}

#[test]
fn truncated_outcomes_are_a_lower_bound() {
    // Even truncated, whatever the engines report must be a subset of
    // the true outcome set.
    let prog = litmus::iriw().program;
    let machine = ScMachine;
    let full = explore_seq(&machine, &prog, Limits::default());
    for cap in [4, 16, 64] {
        for ex in [
            explore_seq(&machine, &prog, Limits::with_max_states(cap)),
            explore(&machine, &prog, Limits { max_states: cap, threads: 4, ..Limits::default() }),
        ] {
            assert!(ex.outcomes.is_subset(&full.outcomes), "cap {cap}");
            assert!(ex.states <= full.states);
        }
    }
}

/// The acceptance benchmark: on a multicore host, 8 workers must beat
/// the sequential DFS by ≥ 3× in [`ExplorationStats::states_per_sec`]
/// on a Dekker-idiom subject for the Section 5 weak-ordering machine.
///
/// Skipped (vacuously passing) when the host exposes fewer than four
/// hardware threads — a speedup assertion on a single-core container
/// would only measure mutex overhead.
#[test]
fn parallel_speedup_on_multicore_hosts() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 4 {
        eprintln!("skipping speedup assertion: only {cores} hardware thread(s)");
        return;
    }
    use weakord_progs::workloads::{spinlock, SpinlockParams};
    // The Dekker fragment itself finishes in ~100µs; measure the same
    // mutual-exclusion idiom at a state count where throughput is
    // meaningful, plus report the dekker numbers for the record.
    let prog = spinlock(SpinlockParams {
        n_procs: 3,
        sections_per_proc: 2,
        writes_per_section: 2,
        think: 0,
    });
    let machine = WoDef2Machine::default();
    let seq = explore_seq(&machine, &prog, Limits::default());
    let par = explore(&machine, &prog, Limits::with_threads(8));
    assert_eq!(par, seq);
    let speedup = par.stats.states_per_sec() / seq.stats.states_per_sec();
    eprintln!(
        "speedup on {} states with 8 workers over {} cores: {speedup:.2}x",
        seq.states, cores
    );
    assert!(speedup >= 3.0, "expected ≥3x speedup on {cores} cores, got {speedup:.2}x");
}

/// Exercises deadline truncation through the public API: a zero budget
/// must stop the engine almost immediately and say why.
#[test]
fn deadline_truncates_and_reports() {
    let prog = litmus::iriw().program;
    let limits =
        Limits { deadline: Some(std::time::Duration::ZERO), threads: 2, ..Limits::default() };
    let ex: Exploration = explore(&ScMachine, &prog, limits);
    assert!(ex.truncated());
    assert_eq!(ex.stats.truncation, Some(TruncationReason::Deadline));
}
