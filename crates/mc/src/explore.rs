//! Exhaustive state-space exploration.
//!
//! The engine enumerates a [`Machine`]'s reachable state graph and
//! collects the set of terminal [`Outcome`]s. Spin loops revisit states
//! and are handled by deduplication, so unbounded spins do not prevent
//! termination.
//!
//! Two engines share one result type:
//!
//! * [`explore`] — the parallel engine: `limits.threads` workers under
//!   [`std::thread::scope`] over the lock-free [`VisitedSet`] (an
//!   open-addressing fingerprint table indexing an exact store of
//!   [`Codec`]-encoded states — see [`crate::visited`]). Frontiers hold
//!   the visited set's `u64` ids, not boxed state clones: a successor
//!   is encoded exactly once (the encode doubles as the hash walk) and
//!   decoded back only when expanded. Each worker keeps a bounded *hot
//!   tail* of its newest admissions decoded — expanded LIFO without a
//!   decode — so the depth-first spine pays no codec round-trip, and
//!   recycles retired successor states through a pool
//!   ([`Machine::successors_into`]) so steady-state expansion performs
//!   no per-arc heap allocation. With
//!   [`Limits::memory_budget`] set, encoded states past the budget
//!   spill to disk and capacity is bounded by disk, not RAM.
//! * [`explore_seq`] — the classic single-threaded DFS over a plain
//!   `HashSet`, kept as the reference for differential testing.
//!
//! (A third, [`crate::explore_legacy`], freezes the pre-lock-free
//! mutex-shard engine as the benchmark baseline.)
//!
//! Both engines visit exactly the same set of states, so `outcomes` (an
//! order-insensitive `BTreeSet`), `states`, and `deadlocks` are
//! identical across engines and across runs whenever the exploration is
//! not truncated. Run-specific diagnostics live in
//! [`ExplorationStats`], which is deliberately excluded from
//! [`Exploration`]'s equality.

use std::collections::{BTreeSet, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use weakord_obs::{Event, MetricsRegistry, Tracer, Track};
use weakord_progs::{Outcome, Program};

use crate::checkpoint::{
    self, config_fingerprint, CheckpointCfg, CheckpointError, Codec, ParallelSnapshot,
    PersistedCounters, Reader, Snapshot,
};
use crate::fxhash::{hash_bytes, FxBuildHasher};
use crate::machine::{Label, Machine};
use crate::reduce::{ample_index, FutureTable};
use crate::visited::{Admit, ProbeTelemetry, VisitedSet};

pub use crate::visited::N_SHARDS;

/// Exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of distinct states to visit before giving up and
    /// marking the exploration truncated.
    pub max_states: usize,
    /// Worker threads for [`explore`]; `0` means one per available
    /// hardware thread ([`std::thread::available_parallelism`]).
    pub threads: usize,
    /// Wall-clock budget; exceeding it truncates the exploration
    /// (`outcomes` is then a lower bound, like hitting `max_states`).
    pub deadline: Option<Duration>,
    /// Whether the engines prune the successor relation with the
    /// partial-order reduction's persistent (ample) sets — see
    /// [`crate::reduce`]. Outcome and deadlock sets are preserved;
    /// `states` and `stats` shrink.
    pub reduction: Reduction,
    /// RAM ceiling, in bytes, for the visited set's resident footprint
    /// (encoded payloads + index). `None` (the default) keeps
    /// everything in RAM; with a budget, admissions past it spill
    /// encoded states to a temp file, so exploration capacity is
    /// bounded by disk instead. A resource knob, not a semantic one:
    /// excluded from the checkpoint configuration fingerprint, and the
    /// results are identical with or without it.
    pub memory_budget: Option<usize>,
}

/// Successor-pruning mode for the exploration engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Expand every enabled transition (the exhaustive baseline).
    #[default]
    Full,
    /// At each state, expand only a persistent (ample) subset of the
    /// enabled transitions when the dependence analysis finds one
    /// (see [`crate::reduce`]); outcome and deadlock sets are provably
    /// unchanged.
    Ample,
}

impl Default for Limits {
    /// 4M states, one worker per hardware thread, no deadline, no
    /// reduction, no memory budget. The state cap can be tightened
    /// (never raised) from the environment via `WEAKORD_MAX_STATES` —
    /// CI uses this to turn a state-space blowup into a fast failure
    /// instead of a timeout.
    fn default() -> Self {
        let max_states = std::env::var("WEAKORD_MAX_STATES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .map_or(4_000_000, |n: usize| n.min(4_000_000));
        Limits {
            max_states,
            threads: 0,
            deadline: None,
            reduction: Reduction::Full,
            memory_budget: None,
        }
    }
}

impl Limits {
    /// Default limits with an explicit worker count.
    pub fn with_threads(threads: usize) -> Self {
        Limits { threads, ..Limits::default() }
    }

    /// Default limits with an explicit state cap.
    pub fn with_max_states(max_states: usize) -> Self {
        Limits { max_states, ..Limits::default() }
    }

    /// Default limits with ample-set reduction enabled.
    pub fn reduced() -> Self {
        Limits { reduction: Reduction::Ample, ..Limits::default() }
    }

    /// Default limits with a visited-set memory budget (bytes).
    pub fn with_memory_budget(bytes: usize) -> Self {
        Limits { memory_budget: Some(bytes), ..Limits::default() }
    }

    /// The worker count [`explore`] will actually use.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// A cooperative, job-granular cancellation hook for the parallel
/// engine.
///
/// Cloning shares the flag: hand one clone to the exploration (via
/// [`explore_with_cancel`] and friends) and keep the other; calling
/// [`CancelToken::cancel`] from any thread stops the run at the next
/// worker safepoint — the same per-arc granularity as the wall-clock
/// deadline, so a cancel lands within one machine step per worker. A
/// cancelled run truncates with [`TruncationReason::Cancelled`]; when
/// checkpointing is on, the final checkpoint is still written, so a
/// cancelled job is resumable exactly like a suspended one.
///
/// This is what lets a serving layer shed or abort one in-flight job
/// without tearing down the pool: the token is per-exploration, not
/// process-global.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; idempotent, callable from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Live progress counters for an in-flight exploration, published
/// atomically by the engine and readable from any thread.
///
/// Construction follows [`CancelToken`]: cloning shares the counters,
/// so hand one clone to the exploration (via [`explore_with_progress`]
/// and friends) and keep the other to [`ProgressSink::sample`] from a
/// monitor thread. The engine samples at the existing worker
/// safepoints — the same loop-top/per-pop cadence as the deadline and
/// cancel checks — and batches like [`ProbeTelemetry`]: one worker
/// elects itself publisher when the sampling interval elapses (a CAS
/// on the next-due time), flushes its local probe batch, and stores a
/// consistent-enough snapshot into plain atomics. No locks, no
/// allocation, no cross-worker rendezvous: a run with no sink attached
/// pays one untaken branch per `PROGRESS_CHECK_EVERY` pops, and
/// `tests/overhead.rs` pins even the *attached* path to zero extra
/// heap allocations.
///
/// Every published counter except `frontier` (a gauge) is monotone
/// non-decreasing over the lifetime of one engine, and `seq` increments
/// with every publication, so readers can detect staleness.
#[derive(Clone, Debug, Default)]
pub struct ProgressSink {
    inner: Arc<ProgressShared>,
}

#[derive(Debug)]
struct ProgressShared {
    /// Sampling period; a publisher is elected at most this often.
    interval_nanos: u64,
    /// When the sink was created (the elapsed-time epoch for `next_due`).
    epoch: Instant,
    /// Nanos-since-epoch of the next due sample; CAS-claimed by the
    /// publishing worker.
    next_due: AtomicU64,
    /// Publication count (bumped last, `Release`; readers pair with
    /// `Acquire` so a changed `seq` implies fresh counters).
    seq: AtomicU64,
    states: AtomicU64,
    frontier: AtomicU64,
    dedup_hits: AtomicU64,
    dedup_probes: AtomicU64,
    pruned_arcs: AtomicU64,
    steals: AtomicU64,
    worker_panics: AtomicU64,
    table_capacity: AtomicU64,
    mem_bytes: AtomicU64,
    elapsed_nanos: AtomicU64,
}

impl Default for ProgressShared {
    fn default() -> Self {
        ProgressShared::with_interval(Duration::from_millis(100))
    }
}

impl ProgressShared {
    fn with_interval(interval: Duration) -> Self {
        ProgressShared {
            interval_nanos: interval.as_nanos().min(u128::from(u64::MAX)) as u64,
            epoch: Instant::now(),
            next_due: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            states: AtomicU64::new(0),
            frontier: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            dedup_probes: AtomicU64::new(0),
            pruned_arcs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            table_capacity: AtomicU64::new(0),
            mem_bytes: AtomicU64::new(0),
            elapsed_nanos: AtomicU64::new(0),
        }
    }
}

impl ProgressSink {
    /// A fresh sink publishing at most every 100ms.
    pub fn new() -> Self {
        ProgressSink::default()
    }

    /// A fresh sink publishing at most every `interval`
    /// ([`Duration::ZERO`]: at every safepoint check).
    pub fn with_interval(interval: Duration) -> Self {
        ProgressSink { inner: Arc::new(ProgressShared::with_interval(interval)) }
    }

    /// The most recently published counters (all zero until the engine
    /// publishes its first sample).
    pub fn sample(&self) -> ProgressSnapshot {
        let p = &self.inner;
        let seq = p.seq.load(Ordering::Acquire);
        ProgressSnapshot {
            seq,
            states: p.states.load(Ordering::Relaxed),
            frontier: p.frontier.load(Ordering::Relaxed),
            dedup_hits: p.dedup_hits.load(Ordering::Relaxed),
            dedup_probes: p.dedup_probes.load(Ordering::Relaxed),
            pruned_arcs: p.pruned_arcs.load(Ordering::Relaxed),
            steals: p.steals.load(Ordering::Relaxed),
            worker_panics: p.worker_panics.load(Ordering::Relaxed),
            table_capacity: p.table_capacity.load(Ordering::Relaxed),
            mem_bytes: p.mem_bytes.load(Ordering::Relaxed),
            elapsed: Duration::from_nanos(p.elapsed_nanos.load(Ordering::Relaxed)),
        }
    }
}

/// One point-in-time sample of a running exploration, read through
/// [`ProgressSink::sample`].
///
/// `Copy` and heap-free by construction, like [`weakord_obs::Event`]:
/// sampling never allocates on either side. All counters are monotone
/// within one engine except `frontier`, which is the instantaneous
/// admitted-but-unexpanded population (a gauge that rises and falls).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProgressSnapshot {
    /// Publication count; 0 means nothing was published yet.
    pub seq: u64,
    /// Distinct states admitted to the visited set so far.
    pub states: u64,
    /// States admitted but not yet expanded (frontier depth).
    pub frontier: u64,
    /// Successor arcs that landed on an already-visited state.
    pub dedup_hits: u64,
    /// Successor arcs probed against the visited set.
    pub dedup_probes: u64,
    /// Arcs pruned by the partial-order reduction.
    pub pruned_arcs: u64,
    /// Successful work-steals.
    pub steals: u64,
    /// Worker panics absorbed so far.
    pub worker_panics: u64,
    /// Slots across the fingerprint table's active levels.
    pub table_capacity: u64,
    /// Resident bytes of the visited set's in-RAM payloads.
    pub mem_bytes: u64,
    /// Cumulative exploration wall-clock (across resume legs).
    pub elapsed: Duration,
}

impl ProgressSnapshot {
    /// Distinct states per second of exploration wall-clock so far.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.states as f64 / secs
        } else {
            0.0
        }
    }

    /// Load factor of the fingerprint table's active levels.
    pub fn table_occupancy(&self) -> f64 {
        if self.table_capacity > 0 {
            self.states as f64 / self.table_capacity as f64
        } else {
            0.0
        }
    }

    /// Fraction of probed arcs deduplicated away.
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.dedup_probes > 0 {
            self.dedup_hits as f64 / self.dedup_probes as f64
        } else {
            0.0
        }
    }
}

/// Why an exploration stopped before exhausting the state space.
///
/// Replaces the old boolean "truncated" flag wherever it leaked into
/// the CLI and exports: a truncated result is only trustworthy if it
/// says *why* it is partial and whether it can be continued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruncationReason {
    /// `Limits::max_states` distinct states were admitted and another
    /// new state was reached.
    MaxStates,
    /// `Limits::deadline` expired.
    Deadline,
    /// Every worker died to a panic with work still queued, so part of
    /// the state space was never expanded. (A panic that leaves at
    /// least one worker alive does **not** truncate: the survivors
    /// finish the requeued work and only `worker_panics` records it.)
    WorkerPanic,
    /// The run suspended itself at a checkpoint boundary
    /// (the [`crate::checkpoint::CheckpointCfg::abort_after`] crash
    /// hook); resume to continue it.
    Resumable,
    /// A [`CancelToken`] was triggered; the run stopped at the next
    /// worker safepoint. With checkpointing on, the final checkpoint
    /// makes the job resumable.
    Cancelled,
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TruncationReason::MaxStates => "state cap",
            TruncationReason::Deadline => "deadline",
            TruncationReason::WorkerPanic => "worker panic",
            TruncationReason::Resumable => "suspended (resumable)",
            TruncationReason::Cancelled => "cancelled",
        })
    }
}

/// Run diagnostics for one exploration: throughput, dedup behavior, and
/// parallel-engine counters.
///
/// Everything here varies run to run (timing, scheduling); semantic
/// results live on [`Exploration`] itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplorationStats {
    /// Distinct states admitted to the visited set.
    pub distinct_states: usize,
    /// Wall-clock time of the exploration.
    pub duration: Duration,
    /// Successor arcs that landed on an already-visited state.
    pub dedup_hits: u64,
    /// Total successor arcs probed against the visited set.
    pub dedup_probes: u64,
    /// Peak length of any single worker's frontier deque.
    pub peak_frontier: usize,
    /// Worker threads used (1 for [`explore_seq`]).
    pub threads: usize,
    /// Successful work-steals (0 for [`explore_seq`]).
    pub steals: u64,
    /// Successor arcs the partial-order reduction pruned before they
    /// were ever probed (0 when [`Reduction::Full`]).
    pub pruned_arcs: u64,
    /// Why the exploration stopped early, if it did.
    pub truncation: Option<TruncationReason>,
    /// Worker panics absorbed by the engine (each one retired a worker
    /// after requeueing its in-flight state; see
    /// [`TruncationReason::WorkerPanic`]).
    pub worker_panics: u32,
    /// How far past `Limits::deadline` the slowest enforcement point
    /// observed the clock (zero when no deadline was hit). Bounded by
    /// one machine step now that the deadline is enforced per arc.
    pub deadline_overshoot: Duration,
    /// Checkpoints written during this run (0 when checkpointing is
    /// off; cumulative across resumes).
    pub checkpoints: u32,
    /// Wall-clock spent serializing and writing checkpoints (the
    /// overhead knob `--checkpoint-every` trades against).
    pub checkpoint_time: Duration,
    /// Total slot inspections across all visited-set probes (parallel
    /// engine only; average probe length = `probe_steps /
    /// dedup_probes`). Restarts at 0 on a resumed leg.
    pub probe_steps: u64,
    /// Total slots across every shard's active fingerprint level
    /// (parallel engine only); occupancy = `distinct_states /
    /// table_capacity`.
    pub table_capacity: u64,
    /// Encoded states whose payload lives in the disk spill (0 without
    /// a [`Limits::memory_budget`]).
    pub spilled_states: u64,
    /// Bytes appended to the disk spill.
    pub spill_bytes: u64,
    /// Resident bytes of the visited set's in-RAM payloads (parallel
    /// engine only; what [`Limits::memory_budget`] bounds, together
    /// with the index).
    pub mem_bytes: u64,
    /// Final visited-set size per shard (parallel engine only; `None`
    /// for the single-set sequential searches). Shard balance is the
    /// load-balance signal: a skewed fingerprint would show up here as
    /// one hot shard.
    pub shard_states: Option<[usize; N_SHARDS]>,
}

impl ExplorationStats {
    /// Distinct states admitted per second of wall-clock time.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            self.distinct_states as f64 / secs
        } else {
            f64::INFINITY
        }
    }

    /// Fraction of successor arcs deduplicated away (`0.0` when nothing
    /// was probed).
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.dedup_probes > 0 {
            self.dedup_hits as f64 / self.dedup_probes as f64
        } else {
            0.0
        }
    }

    /// Fraction of successor arcs the partial-order reduction removed,
    /// out of all arcs the unpruned expansion of the *visited* states
    /// would have produced (`0.0` for a full exploration). Deterministic
    /// for a given machine × program, even under the parallel engine:
    /// the ample choice is a function of the state alone.
    pub fn reduction_ratio(&self) -> f64 {
        let total = self.pruned_arcs + self.dedup_probes;
        if total > 0 {
            self.pruned_arcs as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Load factor of the fingerprint table's active levels (`0.0` for
    /// the sequential engines).
    pub fn table_occupancy(&self) -> f64 {
        if self.table_capacity > 0 {
            self.distinct_states as f64 / self.table_capacity as f64
        } else {
            0.0
        }
    }

    /// Average slots inspected per visited-set probe (`0.0` when
    /// nothing was probed or the engine does not count steps).
    pub fn avg_probe_len(&self) -> f64 {
        if self.dedup_probes > 0 && self.probe_steps > 0 {
            self.probe_steps as f64 / self.dedup_probes as f64
        } else {
            0.0
        }
    }

    /// Folds the exploration diagnostics into `reg` under the `ns.`
    /// prefix: state/arc/steal tallies as counters, rates and durations
    /// as gauges, and (for the parallel engine) per-shard visited-set
    /// sizes plus their max/min balance and the fingerprint-table /
    /// spill gauges.
    pub fn export_metrics(&self, ns: &str, reg: &mut MetricsRegistry) {
        reg.counter(format!("{ns}.states"), self.distinct_states as u64);
        reg.counter(format!("{ns}.dedup-hits"), self.dedup_hits);
        reg.counter(format!("{ns}.dedup-probes"), self.dedup_probes);
        reg.counter(format!("{ns}.pruned-arcs"), self.pruned_arcs);
        reg.counter(format!("{ns}.steals"), self.steals);
        reg.counter(format!("{ns}.peak-frontier"), self.peak_frontier as u64);
        reg.counter(format!("{ns}.threads"), self.threads as u64);
        reg.counter(format!("{ns}.truncated"), u64::from(self.truncation.is_some()));
        reg.counter(
            format!("{ns}.truncated.max-states"),
            u64::from(self.truncation == Some(TruncationReason::MaxStates)),
        );
        reg.counter(
            format!("{ns}.truncated.deadline"),
            u64::from(self.truncation == Some(TruncationReason::Deadline)),
        );
        reg.counter(
            format!("{ns}.truncated.worker-panic"),
            u64::from(self.truncation == Some(TruncationReason::WorkerPanic)),
        );
        reg.counter(
            format!("{ns}.truncated.resumable"),
            u64::from(self.truncation == Some(TruncationReason::Resumable)),
        );
        reg.counter(
            format!("{ns}.truncated.cancelled"),
            u64::from(self.truncation == Some(TruncationReason::Cancelled)),
        );
        reg.counter(format!("{ns}.worker-panics"), u64::from(self.worker_panics));
        reg.counter(format!("{ns}.checkpoints"), u64::from(self.checkpoints));
        reg.gauge(format!("{ns}.checkpoint-time-ms"), self.checkpoint_time.as_secs_f64() * 1e3);
        reg.gauge(
            format!("{ns}.deadline-overshoot-ms"),
            self.deadline_overshoot.as_secs_f64() * 1e3,
        );
        reg.gauge(format!("{ns}.duration-ms"), self.duration.as_secs_f64() * 1e3);
        reg.gauge(format!("{ns}.dedup-hit-rate"), self.dedup_hit_rate());
        reg.gauge(format!("{ns}.reduction-ratio"), self.reduction_ratio());
        let sps = self.states_per_sec();
        if sps.is_finite() {
            reg.gauge(format!("{ns}.states-per-sec"), sps);
        }
        if self.table_capacity > 0 {
            reg.counter(format!("{ns}.table-capacity"), self.table_capacity);
            reg.gauge(format!("{ns}.table-occupancy"), self.table_occupancy());
            reg.gauge(format!("{ns}.avg-probe-len"), self.avg_probe_len());
            reg.counter(format!("{ns}.mem-bytes"), self.mem_bytes);
            reg.counter(format!("{ns}.spilled-states"), self.spilled_states);
            reg.counter(format!("{ns}.spill-bytes"), self.spill_bytes);
        }
        if let Some(shards) = &self.shard_states {
            reg.counter(format!("{ns}.shard-max"), *shards.iter().max().unwrap_or(&0) as u64);
            reg.counter(format!("{ns}.shard-min"), *shards.iter().min().unwrap_or(&0) as u64);
            for (s, n) in shards.iter().enumerate() {
                if *n > 0 {
                    reg.counter(format!("{ns}.shard{s}.states"), *n as u64);
                }
            }
        }
    }

    /// Emits the per-shard visited-set sizes as counter samples on the
    /// explorer's shard tracks at timestamp `at` (the Chrome exporter
    /// renders one track per shard under the "explorer" process).
    pub fn trace_shards(&self, at: u64, tracer: &mut impl Tracer) {
        if !tracer.enabled() {
            return;
        }
        let Some(shards) = &self.shard_states else {
            return;
        };
        for (s, n) in shards.iter().enumerate() {
            if *n > 0 {
                tracer.record(Event::counter(
                    at,
                    Track::Shard(s as u16),
                    "mc",
                    "states",
                    *n as i64,
                ));
            }
        }
    }
}

impl std::fmt::Display for ExplorationStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} states in {:.1?} ({:.0} states/s, {:.0}% dedup, peak frontier {}, {} thread(s), {} steals{}{}{}{}",
            self.distinct_states,
            self.duration,
            self.states_per_sec(),
            100.0 * self.dedup_hit_rate(),
            self.peak_frontier,
            self.threads,
            self.steals,
            if self.pruned_arcs > 0 {
                format!(", {:.0}% arcs pruned", 100.0 * self.reduction_ratio())
            } else {
                String::new()
            },
            if self.spilled_states > 0 {
                format!(
                    ", spilled {} states ({} bytes) to disk",
                    self.spilled_states, self.spill_bytes
                )
            } else {
                String::new()
            },
            match (self.worker_panics, self.checkpoints) {
                (0, 0) => String::new(),
                (p, 0) => format!(", {p} worker panic(s)"),
                (0, c) => format!(", {c} checkpoint(s)"),
                (p, c) => format!(", {p} worker panic(s), {c} checkpoint(s)"),
            },
            match self.truncation {
                None => String::new(),
                Some(reason) => format!(", TRUNCATED: {reason}"),
            }
        )?;
        f.write_str(")")
    }
}

/// The result of exploring one machine on one program.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Every reachable terminal outcome.
    pub outcomes: BTreeSet<Outcome>,
    /// Number of distinct states visited.
    pub states: usize,
    /// Number of deadlocked states (no transitions, not terminal).
    pub deadlocks: usize,
    /// Why the run stopped early, if it did; `outcomes` is then a
    /// lower bound ([`TruncationReason::Resumable`] additionally means
    /// a checkpoint holds everything needed to continue).
    pub truncation: Option<TruncationReason>,
    /// Run diagnostics (excluded from equality: timing and scheduling
    /// vary run to run even when the semantic results are identical).
    pub stats: ExplorationStats,
}

impl PartialEq for Exploration {
    fn eq(&self, other: &Self) -> bool {
        self.outcomes == other.outcomes
            && self.states == other.states
            && self.deadlocks == other.deadlocks
            && self.truncation == other.truncation
    }
}

impl Eq for Exploration {}

impl Exploration {
    /// Returns `true` if any deadlock was reached.
    pub fn has_deadlock(&self) -> bool {
        self.deadlocks > 0
    }

    /// `true` if the run stopped before exhausting the state space
    /// (see [`Exploration::truncation`] for why).
    pub fn truncated(&self) -> bool {
        self.truncation.is_some()
    }
}

/// How often a worker re-checks the wall-clock deadline between state
/// pops when no deadline is near. The deadline is *also* enforced at
/// per-arc granularity inside [`Engine::expand`] (after every
/// `successors` call and per admitted arc), so this coarse check only
/// bounds how long an idle-ish worker keeps spinning.
const DEADLINE_CHECK_EVERY: u32 = 128;

/// How often a worker re-checks whether a progress sample is due,
/// in state pops. Only decremented when a [`ProgressSink`] is attached;
/// without one the progress path is a single untaken branch per pop.
const PROGRESS_CHECK_EVERY: u32 = 64;

/// Per-worker cap on decoded states kept in the hot tail. Beyond it the
/// oldest entries park in the shared frontier as bare ids: worker
/// memory stays bounded at `HOT_CAP` states while deep depth-first
/// spines still skip (nearly) every decode.
const HOT_CAP: usize = 1024;

/// Per-worker cap on retired states kept for reuse; more would just be
/// dead weight, since one expansion never needs more scratch states
/// than its arc count.
const POOL_CAP: usize = 64;

/// Returns a retired state to `pool` unless it is already full.
fn recycle<S>(pool: &mut Vec<S>, s: S) {
    if pool.len() < POOL_CAP {
        pool.push(s);
    }
}

/// Locks a mutex, tolerating poison: a worker that panicked while
/// holding a frontier lock must not cascade into aborting every other
/// worker. The protected structures are valid after a panic (collection
/// operations are atomic with respect to unwinding: a push either
/// happened or did not), so the data is usable; the panic itself is
/// accounted for by the panic-isolation protocol in
/// [`Engine::run_worker`].
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Serializes quiescent snapshots to stable storage. A `dyn` trait so
/// the [`Engine`] can hold a sink without caring where it writes.
trait SnapshotSink<S>: Sync {
    fn write(&self, snap: &Snapshot<S>) -> Result<(), CheckpointError>;
}

/// The file-backed sink: [`checkpoint::save`] under this run's
/// configuration fingerprint.
struct FileSink<'a> {
    cfg: &'a CheckpointCfg,
    fp: u64,
}

impl<S: Codec> SnapshotSink<S> for FileSink<'_> {
    fn write(&self, snap: &Snapshot<S>) -> Result<(), CheckpointError> {
        checkpoint::save(self.cfg, self.fp, snap)
    }
}

/// Shared state of the checkpoint rendezvous (present only when the
/// run checkpoints).
///
/// A consistent snapshot of a parallel exploration needs quiescence:
/// every worker parked at its loop-top safepoint, holding no in-flight
/// state (the depth-first hot tail included — it is parked back into the
/// deque first), so that `frontier = admitted − expanded` exactly. The
/// first worker to cross the `next_at` admission threshold elects
/// itself coordinator (CAS on `pause`), everyone else parks, the
/// coordinator serializes and resumes the fleet. Workers publish their
/// local outcome/deadlock accumulators into `published` every time they
/// park or retire, so the coordinator sees every result without
/// joining.
struct CkptState<'a, S> {
    sink: &'a dyn SnapshotSink<S>,
    /// Autosave period in admitted states (`0`: final save only).
    every: usize,
    /// Crash-injection hook: suspend after this many periodic saves.
    abort_after: Option<u32>,
    /// A coordinator holds this while the fleet is parked.
    pause: AtomicBool,
    /// Workers currently parked at the safepoint.
    parked: AtomicUsize,
    /// Next admission count that triggers a periodic save.
    next_at: AtomicUsize,
    /// Periodic saves completed.
    written: AtomicU32,
    /// Wall-clock nanoseconds spent writing checkpoints.
    write_nanos: AtomicU64,
    /// Set when a save failed; the run stops and reports `error`.
    failed: AtomicBool,
    error: Mutex<Option<CheckpointError>>,
    /// Per-worker cumulative results, refreshed at every park/retire.
    published: Vec<Mutex<WorkerResult>>,
}

struct Engine<'a, M: Machine> {
    machine: &'a M,
    prog: &'a Program,
    limits: Limits,
    /// The lock-free visited set; also the arena every frontier id
    /// points into.
    visited: VisitedSet,
    /// One frontier deque of visited-set ids per worker. The owner
    /// pushes and pops at the back (depth-first); thieves take from the
    /// front, where the shallowest — and therefore usually largest —
    /// subtrees sit. Ids are 8 bytes, so steals move words, not states.
    frontiers: Vec<Mutex<VecDeque<u64>>>,
    /// States admitted but not yet fully expanded (queued, in a
    /// worker's hot tail, or mid-expansion). Workers may only retire when
    /// this reaches zero: an empty frontier alone does not mean the
    /// exploration is done (a peer may be mid-expansion and about to
    /// publish new work).
    pending: AtomicUsize,
    /// Set on truncation: everyone drains out immediately.
    stop: AtomicBool,
    capped: AtomicBool,
    deadline_hit: AtomicBool,
    /// Set when the run suspends itself at a checkpoint boundary.
    resumable: AtomicBool,
    /// Set when the run's [`CancelToken`] fired.
    cancelled: AtomicBool,
    /// Cooperative cancellation, checked at the same safepoints as the
    /// deadline (`None`: not cancellable).
    cancel: Option<CancelToken>,
    /// Live progress counters, published at the same safepoints
    /// (`None`: no monitoring, no cost beyond one untaken branch).
    progress: Option<ProgressSink>,
    deadline_at: Option<Instant>,
    /// Worst observed overshoot past the deadline, in nanoseconds.
    overshoot_nanos: AtomicU64,
    /// Workers still in their run loop. Retiring workers (normal
    /// drain-out, stop, or absorbed panic) decrement it so a
    /// checkpoint coordinator never waits for the departed.
    active: AtomicUsize,
    /// Panics absorbed by the isolation protocol.
    worker_panics: AtomicU64,
    steals: AtomicU64,
    peak_frontier: AtomicUsize,
    pruned_arcs: AtomicU64,
    /// Static future-footprint table driving the ample-set choice;
    /// `None` when the reduction is off (or unavailable for the
    /// program).
    reduction: Option<FutureTable>,
    /// Checkpoint rendezvous, when the run checkpoints.
    ckpt: Option<CkptState<'a, M::State>>,
    /// Results merged in from a resumed checkpoint (empty otherwise):
    /// outcomes, deadlocks, checkpoints written, prior elapsed nanos.
    base: ResumeBase,
    /// When this leg of the run started (for cumulative elapsed time
    /// in periodic checkpoints).
    started: Instant,
}

/// What a resumed run inherits from its checkpoint.
#[derive(Default)]
struct ResumeBase {
    outcomes: BTreeSet<Outcome>,
    deadlocks: u64,
    checkpoints: u32,
    elapsed_nanos: u64,
    checkpoint_nanos: u64,
}

/// What one worker accumulated locally; merged at join.
#[derive(Clone, Default)]
struct WorkerResult {
    outcomes: BTreeSet<Outcome>,
    deadlocks: usize,
}

/// How one expansion ended.
enum Step {
    /// The state was fully classified/expanded.
    Done,
    /// Truncation struck mid-expansion: the state must be requeued so
    /// its remaining successors are recoverable (by a resume, or just
    /// by an accurate frontier in the final checkpoint).
    Interrupted,
}

impl<'a, M: Machine> Engine<'a, M> {
    fn new(machine: &'a M, prog: &'a Program, limits: Limits, workers: usize) -> Self {
        Engine {
            machine,
            prog,
            limits,
            visited: VisitedSet::new(limits.memory_budget),
            frontiers: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            capped: AtomicBool::new(false),
            deadline_hit: AtomicBool::new(false),
            resumable: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            cancel: None,
            progress: None,
            deadline_at: limits.deadline.map(|d| Instant::now() + d),
            overshoot_nanos: AtomicU64::new(0),
            active: AtomicUsize::new(workers),
            worker_panics: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            peak_frontier: AtomicUsize::new(0),
            pruned_arcs: AtomicU64::new(0),
            reduction: match limits.reduction {
                Reduction::Full => None,
                Reduction::Ample => FutureTable::new(prog),
            },
            ckpt: None,
            base: ResumeBase::default(),
            started: Instant::now(),
        }
    }

    /// Attaches a cancellation token (before workers start).
    fn with_cancel(mut self, cancel: Option<&CancelToken>) -> Self {
        self.cancel = cancel.cloned();
        self
    }

    /// Attaches a progress sink (before workers start).
    fn with_progress(mut self, progress: Option<&ProgressSink>) -> Self {
        self.progress = progress.cloned();
        self
    }

    /// Attaches the checkpoint rendezvous (before workers start).
    fn with_checkpointing(
        mut self,
        cfg: &'a CheckpointCfg,
        sink: &'a dyn SnapshotSink<M::State>,
    ) -> Self {
        let workers = self.frontiers.len();
        self.ckpt = Some(CkptState {
            sink,
            every: cfg.every,
            abort_after: cfg.abort_after,
            pause: AtomicBool::new(false),
            parked: AtomicUsize::new(0),
            next_at: AtomicUsize::new(if cfg.every == 0 {
                usize::MAX
            } else {
                self.visited.len() + cfg.every
            }),
            written: AtomicU32::new(0),
            write_nanos: AtomicU64::new(0),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
            published: (0..workers).map(|_| Mutex::new(WorkerResult::default())).collect(),
        });
        self
    }

    /// Admits the initial state unconditionally (mirrors the DFS, which
    /// seeds its visited set before checking any cap) and queues it.
    fn seed_root(&self) {
        let mut buf = Vec::new();
        self.machine.initial(self.prog).encode(&mut buf);
        let (id, _) = self.visited.insert(hash_bytes(&buf), &buf);
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.push_id(0, id);
    }

    /// Queues an admitted-but-unexpanded state's id. The `pending`
    /// obligation for it was taken at admission and is untouched here,
    /// so requeues (deadline, panic, hot-tail parking) are balanced.
    fn push_id(&self, worker: usize, id: u64) {
        let mut q = lock_clean(&self.frontiers[worker]);
        q.push_back(id);
        let len = q.len();
        drop(q);
        self.peak_frontier.fetch_max(len, Ordering::Relaxed);
    }

    fn pop_local(&self, worker: usize) -> Option<u64> {
        lock_clean(&self.frontiers[worker]).pop_back()
    }

    /// Steals roughly half of the first non-empty victim deque (front
    /// half: the shallowest states, whose subtrees amortize the steal),
    /// moves it into the local deque, and returns one id to run.
    fn steal_into(&self, worker: usize) -> Option<u64> {
        let n = self.frontiers.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            let mut booty: VecDeque<u64> = {
                let mut v = lock_clean(&self.frontiers[victim]);
                let take = v.len().div_ceil(2);
                if take == 0 {
                    continue;
                }
                v.drain(..take).collect()
            };
            self.steals.fetch_add(1, Ordering::Relaxed);
            let first = booty.pop_front();
            if !booty.is_empty() {
                let mut local = lock_clean(&self.frontiers[worker]);
                local.extend(booty.drain(..));
            }
            return first;
        }
        None
    }

    /// Decodes the state an id names back out of the exact store.
    fn decode_state(&self, id: u64) -> M::State {
        self.visited.with_bytes(id, |b| {
            M::State::decode(&mut Reader::new(b)).expect("visited-set bytes decode to a state")
        })
    }

    fn truncate(&self, reason: TruncationReason) {
        match reason {
            TruncationReason::MaxStates => self.capped.store(true, Ordering::Relaxed),
            TruncationReason::Deadline => self.deadline_hit.store(true, Ordering::Relaxed),
            TruncationReason::Resumable => self.resumable.store(true, Ordering::Relaxed),
            TruncationReason::Cancelled => self.cancelled.store(true, Ordering::Relaxed),
            // WorkerPanic is inferred at the end (work left + all dead),
            // never raised mid-run: surviving workers may yet finish.
            TruncationReason::WorkerPanic => {}
        }
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Notes the clock ran `now - deadline` past the budget.
    fn record_overshoot(&self, deadline: Instant, now: Instant) {
        let ns = now.saturating_duration_since(deadline).as_nanos().min(u128::from(u64::MAX));
        self.overshoot_nanos.fetch_max(ns as u64, Ordering::Relaxed);
    }

    /// The progress safepoint: if a sample is due, elect this worker
    /// publisher (CAS on the due time), flush its probe batch so the
    /// shared counters are fresh, and store the snapshot. Loses of the
    /// CAS race and not-yet-due calls return after one clock read —
    /// and none of the paths allocates.
    fn progress_tick(&self, tel: &mut ProbeTelemetry) {
        let Some(p) = &self.progress else { return };
        let p = &p.inner;
        let now = p.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let due = p.next_due.load(Ordering::Relaxed);
        if now < due
            || p.next_due
                .compare_exchange(
                    due,
                    now.saturating_add(p.interval_nanos),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                )
                .is_err()
        {
            return;
        }
        self.visited.flush_telemetry(tel);
        self.publish_progress();
    }

    /// Stores the current engine counters into the attached sink (a
    /// no-op without one). Monotonicity: every source here is itself
    /// monotone within one engine except `pending`, which is published
    /// as the `frontier` gauge.
    fn publish_progress(&self) {
        let Some(p) = &self.progress else { return };
        let p = &p.inner;
        let v = self.visited.counters();
        p.states.store(self.visited.len() as u64, Ordering::Relaxed);
        p.frontier.store(self.pending.load(Ordering::Relaxed) as u64, Ordering::Relaxed);
        p.dedup_hits.store(v.dedup_hits, Ordering::Relaxed);
        p.dedup_probes.store(v.dedup_probes, Ordering::Relaxed);
        p.pruned_arcs.store(self.pruned_arcs.load(Ordering::Relaxed), Ordering::Relaxed);
        p.steals.store(self.steals.load(Ordering::Relaxed), Ordering::Relaxed);
        p.worker_panics.store(self.worker_panics.load(Ordering::Relaxed), Ordering::Relaxed);
        p.table_capacity.store(v.table_capacity, Ordering::Relaxed);
        p.mem_bytes.store(v.mem_bytes, Ordering::Relaxed);
        p.elapsed_nanos.store(
            self.base
                .elapsed_nanos
                .saturating_add(self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64),
            Ordering::Relaxed,
        );
        p.seq.fetch_add(1, Ordering::Release);
    }

    /// Copies a worker's cumulative results into its published slot so
    /// a checkpoint coordinator can merge them without joining the
    /// thread.
    fn publish(&self, worker: usize, out: &WorkerResult) {
        if let Some(c) = &self.ckpt {
            *lock_clean(&c.published[worker]) = out.clone();
        }
    }

    /// `true` when a checkpoint rendezvous is requested or due, which
    /// is when a worker must park its hot tail (it would otherwise
    /// keep it out of the safepoint for an entire depth-first spine).
    fn ckpt_pending(&self) -> bool {
        self.ckpt.as_ref().is_some_and(|c| {
            c.pause.load(Ordering::SeqCst)
                || (c.every != 0
                    && !c.failed.load(Ordering::Relaxed)
                    && self.visited.len() >= c.next_at.load(Ordering::Relaxed))
        })
    }

    /// The loop-top safepoint of the checkpoint rendezvous: park if a
    /// coordinator paused the fleet, or become the coordinator if the
    /// periodic threshold was crossed. Called with no in-flight state,
    /// which is what makes the resulting snapshot consistent.
    fn ckpt_safepoint(&self, worker: usize, out: &WorkerResult, tel: &mut ProbeTelemetry) {
        let Some(c) = &self.ckpt else { return };
        loop {
            if c.pause.load(Ordering::SeqCst) {
                self.publish(worker, out);
                // Snapshots read the shared counters while the fleet is
                // parked: our batch must land first.
                self.visited.flush_telemetry(tel);
                c.parked.fetch_add(1, Ordering::SeqCst);
                while c.pause.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
                c.parked.fetch_sub(1, Ordering::SeqCst);
                continue; // re-check: another save may begin immediately
            }
            if c.every != 0
                && !self.stop.load(Ordering::Relaxed)
                && !c.failed.load(Ordering::Relaxed)
                && self.visited.len() >= c.next_at.load(Ordering::Relaxed)
            {
                if c.pause.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst).is_ok()
                {
                    self.visited.flush_telemetry(tel);
                    self.coordinate(worker, c, out);
                }
                continue; // lost the race: loop around and park
            }
            return;
        }
    }

    /// Runs one checkpoint as the elected coordinator: wait for every
    /// other live worker to park, serialize the quiescent engine, then
    /// release the fleet.
    fn coordinate(&self, worker: usize, c: &CkptState<'a, M::State>, out: &WorkerResult) {
        self.publish(worker, out);
        // Workers either park (parked += 1) or retire (active -= 1);
        // both make progress, so this terminates.
        while c.parked.load(Ordering::SeqCst) + 1 < self.active.load(Ordering::SeqCst) {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let wrote = Instant::now();
        let snap = Snapshot::Parallel(self.snapshot(None));
        match c.sink.write(&snap) {
            Ok(()) => {
                c.write_nanos.fetch_add(
                    wrote.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
                    Ordering::Relaxed,
                );
                let n = c.written.fetch_add(1, Ordering::SeqCst) + 1;
                c.next_at.store(self.visited.len() + c.every, Ordering::SeqCst);
                if c.abort_after.is_some_and(|k| n >= k) {
                    self.truncate(TruncationReason::Resumable);
                }
            }
            Err(e) => {
                *lock_clean(&c.error) = Some(e);
                c.failed.store(true, Ordering::SeqCst);
                // Checkpointing was requested and is broken: fail fast
                // rather than run hours more with no crash tolerance.
                self.stop.store(true, Ordering::SeqCst);
            }
        }
        c.pause.store(false, Ordering::SeqCst);
    }

    /// A consistent image of the engine, decoded back out of the exact
    /// store. Callers guarantee quiescence (rendezvous mid-run, or all
    /// workers joined at the end); every hot tail is parked in a deque at
    /// those points, so the frontier below is exact.
    fn snapshot(&self, truncation: Option<TruncationReason>) -> ParallelSnapshot<M::State> {
        let mut outcomes = self.base.outcomes.clone();
        let mut deadlocks = self.base.deadlocks;
        if let Some(c) = &self.ckpt {
            for slot in &c.published {
                let r = lock_clean(slot);
                outcomes.extend(r.outcomes.iter().cloned());
                deadlocks += r.deadlocks as u64;
            }
        }
        let shards: Vec<Vec<M::State>> = (0..N_SHARDS)
            .map(|s| {
                let mut v = Vec::new();
                self.visited.for_each_in_shard(s, |b| {
                    v.push(
                        M::State::decode(&mut Reader::new(b))
                            .expect("visited-set bytes decode to a state"),
                    );
                });
                v
            })
            .collect();
        let frontier: Vec<M::State> = self
            .frontiers
            .iter()
            .flat_map(|f| lock_clean(f).iter().copied().collect::<Vec<_>>())
            .map(|id| self.decode_state(id))
            .collect();
        ParallelSnapshot {
            outcomes,
            deadlocks,
            counters: self.persisted_counters(),
            truncation,
            shards,
            frontier,
        }
    }

    fn persisted_counters(&self) -> PersistedCounters {
        let (written, write_nanos) = match &self.ckpt {
            Some(c) => (c.written.load(Ordering::Relaxed), c.write_nanos.load(Ordering::Relaxed)),
            None => (0, 0),
        };
        let v = self.visited.counters();
        PersistedCounters {
            distinct: self.visited.len() as u64,
            dedup_hits: v.dedup_hits,
            dedup_probes: v.dedup_probes,
            pruned_arcs: self.pruned_arcs.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            peak_frontier: self.peak_frontier.load(Ordering::Relaxed) as u64,
            elapsed_nanos: self.base.elapsed_nanos
                + self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            checkpoints: self.base.checkpoints + written,
            ckpt_write_nanos: self.base.checkpoint_nanos + write_nanos,
            worker_panics: self.worker_panics.load(Ordering::Relaxed) as u32,
            overshoot_nanos: self.overshoot_nanos.load(Ordering::Relaxed),
        }
    }

    /// One worker's main loop.
    fn run_worker(&self, worker: usize) -> WorkerResult {
        let mut out = WorkerResult::default();
        let mut succ: Vec<(Label, M::State)> = Vec::new();
        // Encode scratch, reused across every successor of every state.
        let mut buf: Vec<u8> = Vec::new();
        // The newest admissions, kept decoded (newest at the back):
        // expanding them LIFO — exactly what pop_local would return —
        // skips the codec round-trip on the whole depth-first spine.
        // Bounded: overflow parks the *oldest* entry by id, keeping
        // worker memory at HOT_CAP states while stealers still see
        // parked work.
        let mut hot: VecDeque<(u64, M::State)> = VecDeque::new();
        // Retired successor states, recycled through
        // `Machine::successors_into` so steady-state expansion reuses
        // their heap allocations instead of cloning fresh.
        let mut pool: Vec<M::State> = Vec::new();
        // Probe counters batch locally and flush at the quiescence
        // points (park, retire): three shared `fetch_add`s per arc
        // would ping-pong one cache line between every worker.
        let mut tel = ProbeTelemetry::default();
        let mut until_deadline_check = DEADLINE_CHECK_EVERY;
        let mut until_progress_check = PROGRESS_CHECK_EVERY;
        loop {
            // Park the hot tail before stopping or entering a
            // rendezvous: snapshots must see it in the frontier, and a
            // coordinator must not wait on a worker that never reaches
            // the safepoint because its hot tail keeps refilling.
            if !hot.is_empty() && (self.stop.load(Ordering::Relaxed) || self.ckpt_pending()) {
                while let Some((id, s)) = hot.pop_front() {
                    self.push_id(worker, id);
                    recycle(&mut pool, s);
                }
            }
            if hot.is_empty() {
                self.ckpt_safepoint(worker, &out, &mut tel);
                if self.stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                self.truncate(TruncationReason::Cancelled);
                continue; // loop top parks the hot tail, then breaks
            }
            let (id, pre) = match hot.pop_back() {
                Some((id, s)) => (id, Some(s)),
                None => match self.pop_local(worker).or_else(|| self.steal_into(worker)) {
                    Some(id) => (id, None),
                    None => {
                        if self.pending.load(Ordering::SeqCst) == 0 {
                            break; // No queued work, no peer mid-expansion: done.
                        }
                        // Keep samples flowing while idling on a peer's
                        // in-flight expansion (the due-time gate makes
                        // this a clock read, not a publish storm).
                        if self.progress.is_some() {
                            self.progress_tick(&mut tel);
                        }
                        std::hint::spin_loop();
                        std::thread::yield_now();
                        continue;
                    }
                },
            };
            if self.progress.is_some() {
                until_progress_check -= 1;
                if until_progress_check == 0 {
                    until_progress_check = PROGRESS_CHECK_EVERY;
                    self.progress_tick(&mut tel);
                }
            }
            if let Some(deadline) = self.deadline_at {
                until_deadline_check -= 1;
                if until_deadline_check == 0 {
                    until_deadline_check = DEADLINE_CHECK_EVERY;
                    let now = Instant::now();
                    if now >= deadline {
                        self.record_overshoot(deadline, now);
                        self.truncate(TruncationReason::Deadline);
                        // Keep the popped id recoverable: back into
                        // the frontier, not dropped on the floor.
                        self.push_id(worker, id);
                        break;
                    }
                }
            }
            // Panic isolation: a machine's `successors`/`outcome` (or
            // the codec) may panic. Absorb it, requeue the in-flight id
            // for a surviving worker, and retire this worker — the run
            // degrades to fewer threads instead of aborting or
            // deadlocking (the locks tolerate poison, see `lock_clean`).
            let step = catch_unwind(AssertUnwindSafe(|| {
                let state = match pre {
                    Some(s) => s,
                    None => self.decode_state(id),
                };
                let step = self.expand(
                    worker, &state, &mut succ, &mut buf, &mut hot, &mut pool, &mut tel, &mut out,
                );
                recycle(&mut pool, state);
                step
            }));
            match step {
                Ok(Step::Done) => {
                    self.pending.fetch_sub(1, Ordering::SeqCst);
                }
                Ok(Step::Interrupted) => {
                    // Truncation struck mid-expansion; `truncate` has
                    // set `stop`. Requeue so the final checkpoint's
                    // frontier stays exact (the admission obligation is
                    // untouched — see `push_id`).
                    self.push_id(worker, id);
                    break;
                }
                Err(_) => {
                    self.worker_panics.fetch_add(1, Ordering::SeqCst);
                    self.push_id(worker, id);
                    break;
                }
            }
        }
        // Any hot tail survives the break paths above; park it so peers
        // (or the final snapshot) pick it up.
        while let Some((id, _)) = hot.pop_front() {
            self.push_id(worker, id);
        }
        // Retire: publish final results *before* leaving the active
        // set, so a coordinator that stops waiting for us still sees
        // everything we found.
        self.visited.flush_telemetry(&mut tel);
        self.publish(worker, &out);
        self.active.fetch_sub(1, Ordering::SeqCst);
        out
    }

    /// Classifies one state and enqueues its unseen successors.
    ///
    /// Interruption safety (for requeue-and-re-expand): outcomes and
    /// deadlocks are classified *before* any successor is admitted and
    /// return immediately, so an [`Step::Interrupted`] state was never
    /// counted, and re-expanding it later re-derives successors whose
    /// already-admitted prefix simply dedups away.
    fn expand(
        &self,
        worker: usize,
        state: &M::State,
        succ: &mut Vec<(Label, M::State)>,
        buf: &mut Vec<u8>,
        hot: &mut VecDeque<(u64, M::State)>,
        pool: &mut Vec<M::State>,
        tel: &mut ProbeTelemetry,
        out: &mut WorkerResult,
    ) -> Step {
        if let Some(outcome) = self.machine.outcome(self.prog, state) {
            out.outcomes.insert(outcome);
            return Step::Done;
        }
        succ.clear();
        self.machine.successors_into(self.prog, state, succ, pool);
        // Per-arc cancellation: like the deadline below, re-checked
        // right after the potentially slow machine step so a cancel
        // lands within one step per worker.
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            self.truncate(TruncationReason::Cancelled);
            return Step::Interrupted;
        }
        // Per-arc deadline enforcement: `successors` is the potentially
        // slow machine step, so re-read the clock right after it rather
        // than letting a slow transition function overshoot the budget
        // by up to DEADLINE_CHECK_EVERY states.
        if let Some(deadline) = self.deadline_at {
            let now = Instant::now();
            if now >= deadline {
                self.record_overshoot(deadline, now);
                self.truncate(TruncationReason::Deadline);
                return Step::Interrupted;
            }
        }
        if succ.is_empty() {
            out.deadlocks += 1;
            return Step::Done;
        }
        if let Some(table) = &self.reduction {
            if let Some(keep) = ample_index(self.machine, state, succ, table) {
                self.pruned_arcs.fetch_add(succ.len() as u64 - 1, Ordering::Relaxed);
                succ.swap(0, keep);
                succ.truncate(1);
            }
        }
        for (_, next) in succ.drain(..) {
            // The encode is the hash walk: one traversal produces the
            // dedup key, the fingerprint, and (on admission) the stored
            // payload.
            buf.clear();
            next.encode(buf);
            let fp = hash_bytes(buf);
            match self.visited.admit_batched(fp, buf, self.limits.max_states, tel) {
                Admit::New(id) => {
                    self.pending.fetch_add(1, Ordering::SeqCst);
                    // Keep the admission decoded in the hot tail (its
                    // back is exactly what pop_local would return
                    // next); overflow parks the oldest entry by id.
                    hot.push_back((id, next));
                    if hot.len() > HOT_CAP {
                        let (old, s) = hot.pop_front().expect("over capacity");
                        self.push_id(worker, old);
                        recycle(pool, s);
                    }
                }
                Admit::Seen(_) => recycle(pool, next),
                Admit::Capped => {
                    self.truncate(TruncationReason::MaxStates);
                    return Step::Interrupted;
                }
            }
        }
        Step::Done
    }

    /// Why the run stopped early, if it did — called after the workers
    /// joined (quiescent).
    fn truncation(&self) -> Option<TruncationReason> {
        if self.capped.load(Ordering::Relaxed) {
            Some(TruncationReason::MaxStates)
        } else if self.deadline_hit.load(Ordering::Relaxed) {
            Some(TruncationReason::Deadline)
        } else if self.cancelled.load(Ordering::Relaxed) {
            Some(TruncationReason::Cancelled)
        } else if self.resumable.load(Ordering::Relaxed) {
            Some(TruncationReason::Resumable)
        } else if self.pending.load(Ordering::SeqCst) != 0 {
            // Work was queued but nobody is left to run it: every
            // worker died to a panic. The visited set is intact and the
            // collected outcomes are a valid lower bound.
            debug_assert!(self.worker_panics.load(Ordering::Relaxed) > 0);
            Some(TruncationReason::WorkerPanic)
        } else {
            None
        }
    }

    fn into_exploration(self, results: Vec<WorkerResult>, started: Instant) -> Exploration {
        // Final publication: monitors watching the sink see the closing
        // counters even when the run ends inside one sampling interval.
        self.publish_progress();
        let mut outcomes = self.base.outcomes.clone();
        let mut deadlocks = usize::try_from(self.base.deadlocks).unwrap_or(usize::MAX);
        for r in results {
            outcomes.extend(r.outcomes);
            deadlocks += r.deadlocks;
        }
        let truncation = self.truncation();
        let counters = self.persisted_counters();
        let v = self.visited.counters();
        let stats = ExplorationStats {
            distinct_states: self.visited.len(),
            duration: Duration::from_nanos(self.base.elapsed_nanos) + started.elapsed(),
            dedup_hits: counters.dedup_hits,
            dedup_probes: counters.dedup_probes,
            peak_frontier: self.peak_frontier.load(Ordering::Relaxed),
            threads: self.frontiers.len(),
            steals: counters.steals,
            pruned_arcs: counters.pruned_arcs,
            truncation,
            worker_panics: counters.worker_panics,
            deadline_overshoot: Duration::from_nanos(counters.overshoot_nanos),
            checkpoints: counters.checkpoints,
            checkpoint_time: Duration::from_nanos(
                self.base.checkpoint_nanos
                    + self.ckpt.as_ref().map_or(0, |c| c.write_nanos.load(Ordering::Relaxed)),
            ),
            probe_steps: v.probe_steps,
            table_capacity: v.table_capacity,
            spilled_states: v.spilled_states,
            spill_bytes: v.spill_bytes,
            mem_bytes: v.mem_bytes,
            shard_states: Some(self.visited.shard_sizes()),
        };
        Exploration { outcomes, states: stats.distinct_states, deadlocks, truncation, stats }
    }
}

/// Explores the full reachable state space of `machine` running `prog`
/// with `limits.threads` parallel workers (all available cores by
/// default).
///
/// `outcomes`, `states`, `deadlocks`, and `truncated` are identical to
/// [`explore_seq`]'s whenever the exploration is not truncated — the
/// engines differ only in visit order, which the exact visited set
/// makes unobservable. Truncated explorations stop at the same state
/// count but may retain a different (schedule-dependent) sample of
/// outcomes; both are lower bounds.
pub fn explore<M: Machine>(machine: &M, prog: &Program, limits: Limits) -> Exploration {
    explore_inner(machine, prog, limits, None)
}

/// [`explore`], stoppable mid-run through `cancel` — see
/// [`CancelToken`] for the granularity guarantee. A cancelled run
/// truncates with [`TruncationReason::Cancelled`] and its `outcomes`
/// are a lower bound, exactly like a deadline truncation.
pub fn explore_with_cancel<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cancel: &CancelToken,
) -> Exploration {
    explore_inner(machine, prog, limits, Some(cancel))
}

/// [`explore`], with live monitoring (and optionally cancellation):
/// the engine publishes periodic [`ProgressSnapshot`]s into `progress`
/// at the same worker safepoints the cancel/deadline checks use. The
/// results are identical to an unmonitored run — progress is read-only
/// observation, never perturbation.
pub fn explore_with_progress<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cancel: Option<&CancelToken>,
    progress: &ProgressSink,
) -> Exploration {
    explore_full(machine, prog, limits, cancel, Some(progress))
}

fn explore_inner<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cancel: Option<&CancelToken>,
) -> Exploration {
    explore_full(machine, prog, limits, cancel, None)
}

fn explore_full<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cancel: Option<&CancelToken>,
    progress: Option<&ProgressSink>,
) -> Exploration {
    let started = Instant::now();
    let workers = limits.resolved_threads();
    let engine =
        Engine::new(machine, prog, limits, workers).with_cancel(cancel).with_progress(progress);
    engine.seed_root();
    let results = run_workers(&engine, workers);
    engine.into_exploration(results, started)
}

/// Spawns the workers and joins them — shared by every parallel entry
/// point. `join` cannot fail: worker panics are absorbed inside
/// [`Engine::run_worker`], never propagated to the scope.
fn run_workers<M: Machine>(engine: &Engine<'_, M>, workers: usize) -> Vec<WorkerResult> {
    if workers == 1 {
        // Run in place: spawning a lone scoped thread buys nothing.
        vec![engine.run_worker(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                (0..workers).map(|w| scope.spawn(move || engine.run_worker(w))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panic escaped catch_unwind"))
                .collect()
        })
    }
}

/// Common tail of the checkpointed entry points: surface any mid-run
/// save failure, write the final checkpoint (so deadline/cap-truncated
/// and even *completed* runs are resumable), and fold up the result.
fn finish_checkpointed<M: Machine>(
    engine: Engine<'_, M>,
    results: Vec<WorkerResult>,
) -> Result<Exploration, CheckpointError> {
    let started = engine.started;
    if let Some(c) = &engine.ckpt {
        if c.failed.load(Ordering::Relaxed) {
            return Err(lock_clean(&c.error)
                .take()
                .unwrap_or(CheckpointError::Malformed("checkpoint write failed")));
        }
        let truncation = engine.truncation();
        let wrote = Instant::now();
        let snap = Snapshot::Parallel(engine.snapshot(truncation));
        c.sink.write(&snap)?;
        c.write_nanos.fetch_add(
            wrote.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
        c.written.fetch_add(1, Ordering::Relaxed);
    }
    Ok(engine.into_exploration(results, started))
}

/// [`explore`], with crash tolerance: a checkpoint is autosaved to
/// `cfg.dir` every `cfg.every` admitted states (plus a final one when
/// the run stops, for any reason), and [`resume_exploration`] continues
/// a checkpointed run to the same final answer an uninterrupted run
/// would have produced.
pub fn explore_checkpointed<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
) -> Result<Exploration, CheckpointError> {
    explore_checkpointed_inner(machine, prog, limits, cfg, None)
}

/// [`explore_checkpointed`] with a [`CancelToken`]: a cancelled run
/// still writes its final checkpoint, so the job it served can be
/// resumed later exactly like a suspended one.
pub fn explore_checkpointed_with_cancel<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
    cancel: &CancelToken,
) -> Result<Exploration, CheckpointError> {
    explore_checkpointed_inner(machine, prog, limits, cfg, Some(cancel))
}

/// [`explore_checkpointed_with_cancel`] with live monitoring — the
/// full-service entry point for a daemon running observable,
/// cancellable, crash-tolerant jobs.
pub fn explore_checkpointed_with_progress<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
    cancel: &CancelToken,
    progress: &ProgressSink,
) -> Result<Exploration, CheckpointError> {
    explore_checkpointed_full(machine, prog, limits, cfg, Some(cancel), Some(progress))
}

fn explore_checkpointed_inner<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
    cancel: Option<&CancelToken>,
) -> Result<Exploration, CheckpointError> {
    explore_checkpointed_full(machine, prog, limits, cfg, cancel, None)
}

fn explore_checkpointed_full<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
    cancel: Option<&CancelToken>,
    progress: Option<&ProgressSink>,
) -> Result<Exploration, CheckpointError> {
    let sink = FileSink { cfg, fp: config_fingerprint(machine.name(), prog, &limits) };
    let workers = limits.resolved_threads();
    let engine = Engine::new(machine, prog, limits, workers)
        .with_cancel(cancel)
        .with_progress(progress)
        .with_checkpointing(cfg, &sink);
    engine.seed_root();
    let results = run_workers(&engine, workers);
    finish_checkpointed(engine, results)
}

/// Continues an exploration from the checkpoint in `cfg.dir`.
///
/// The checkpoint's configuration fingerprint must match this run's
/// machine, program, state cap, and reduction mode (thread count,
/// deadline, and memory budget may differ — they are resources, not
/// semantics). The final `outcomes`, `states`, and `deadlocks` are
/// identical to an uninterrupted [`explore`] of the same configuration:
/// at a checkpoint boundary the frontier is exactly the
/// admitted-but-unexpanded states, so resuming expands each reachable
/// state exactly once overall.
pub fn resume_exploration<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
) -> Result<Exploration, CheckpointError> {
    resume_inner(machine, prog, limits, cfg, None)
}

/// [`resume_exploration`] with a [`CancelToken`], for resumed jobs that
/// must remain individually stoppable.
pub fn resume_with_cancel<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
    cancel: &CancelToken,
) -> Result<Exploration, CheckpointError> {
    resume_inner(machine, prog, limits, cfg, Some(cancel))
}

/// [`resume_with_cancel`] with live monitoring, for resumed jobs whose
/// progress must stay observable across legs (the published counters
/// are cumulative: a resume restores its checkpoint's totals).
pub fn resume_with_progress<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
    cancel: &CancelToken,
    progress: &ProgressSink,
) -> Result<Exploration, CheckpointError> {
    resume_full(machine, prog, limits, cfg, Some(cancel), Some(progress))
}

fn resume_inner<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
    cancel: Option<&CancelToken>,
) -> Result<Exploration, CheckpointError> {
    resume_full(machine, prog, limits, cfg, cancel, None)
}

fn resume_full<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    cfg: &CheckpointCfg,
    cancel: Option<&CancelToken>,
    progress: Option<&ProgressSink>,
) -> Result<Exploration, CheckpointError> {
    let fp = config_fingerprint(machine.name(), prog, &limits);
    let snap = match checkpoint::load::<M::State>(cfg, fp)? {
        Snapshot::Parallel(p) => p,
        other => {
            return Err(CheckpointError::EngineMismatch { expected: 0, found: other.engine_byte() })
        }
    };
    let sink = FileSink { cfg, fp };
    let workers = limits.resolved_threads();
    let mut engine = Engine::new(machine, prog, limits, workers);
    // Rebuild the visited set (re-encoding each state; shard and id
    // assignment are recomputed) and restore the durable counters the
    // checkpoint carried.
    let mut buf = Vec::new();
    for states in snap.shards {
        for s in states {
            buf.clear();
            s.encode(&mut buf);
            engine.visited.insert(hash_bytes(&buf), &buf);
        }
    }
    engine.visited.restore_probe_counters(snap.counters.dedup_hits, snap.counters.dedup_probes);
    engine.steals.store(snap.counters.steals, Ordering::Relaxed);
    engine.pruned_arcs.store(snap.counters.pruned_arcs, Ordering::Relaxed);
    engine.peak_frontier.store(
        usize::try_from(snap.counters.peak_frontier).unwrap_or(usize::MAX),
        Ordering::Relaxed,
    );
    engine.worker_panics.store(u64::from(snap.counters.worker_panics), Ordering::Relaxed);
    engine.overshoot_nanos.store(snap.counters.overshoot_nanos, Ordering::Relaxed);
    engine.base = ResumeBase {
        outcomes: snap.outcomes,
        deadlocks: snap.deadlocks,
        checkpoints: snap.counters.checkpoints,
        elapsed_nanos: snap.counters.elapsed_nanos,
        checkpoint_nanos: snap.counters.ckpt_write_nanos,
    };
    let engine = engine.with_cancel(cancel).with_progress(progress).with_checkpointing(cfg, &sink);
    // Round-robin the saved frontier across the workers, mapped back
    // to ids (every frontier state is in the visited set by the
    // checkpoint invariant, so `insert` is a pure lookup here). An
    // empty frontier (the run had finished) just means the workers
    // drain out immediately and the stored results are returned as-is.
    for (i, s) in snap.frontier.into_iter().enumerate() {
        buf.clear();
        s.encode(&mut buf);
        let (id, fresh) = engine.visited.insert(hash_bytes(&buf), &buf);
        debug_assert!(!fresh, "checkpoint frontier states are admitted by construction");
        engine.pending.fetch_add(1, Ordering::SeqCst);
        engine.push_id(i % workers, id);
    }
    let results = run_workers(&engine, workers);
    finish_checkpointed(engine, results)
}

/// Explores the full reachable state space of `machine` running `prog`
/// with the reference single-threaded depth-first search.
///
/// Kept alongside [`explore`] for differential testing: both engines
/// must produce identical `outcomes`, `states`, and `deadlocks`.
pub fn explore_seq<M: Machine>(machine: &M, prog: &Program, limits: Limits) -> Exploration {
    let started = Instant::now();
    let initial = machine.initial(prog);
    let mut visited: HashSet<M::State, FxBuildHasher> = HashSet::default();
    let mut stack: Vec<M::State> = Vec::new();
    let mut outcomes = BTreeSet::new();
    let mut deadlocks = 0usize;
    let mut truncation = None;
    let mut dedup_hits = 0u64;
    let mut dedup_probes = 0u64;
    let mut peak_frontier = 0usize;
    let mut pruned_arcs = 0u64;
    let reduction = match limits.reduction {
        Reduction::Full => None,
        Reduction::Ample => FutureTable::new(prog),
    };
    visited.insert(initial.clone());
    stack.push(initial);
    let mut succ: Vec<(Label, M::State)> = Vec::new();
    'search: while let Some(state) = stack.pop() {
        if let Some(outcome) = machine.outcome(prog, &state) {
            outcomes.insert(outcome);
            continue;
        }
        succ.clear();
        machine.successors(prog, &state, &mut succ);
        if succ.is_empty() {
            deadlocks += 1;
            continue;
        }
        if let Some(table) = &reduction {
            if let Some(keep) = ample_index(machine, &state, &succ, table) {
                pruned_arcs += succ.len() as u64 - 1;
                succ.swap(0, keep);
                succ.truncate(1);
            }
        }
        for (_, next) in succ.drain(..) {
            dedup_probes += 1;
            if visited.contains(&next) {
                dedup_hits += 1;
                continue;
            }
            if visited.len() >= limits.max_states {
                truncation = Some(TruncationReason::MaxStates);
                break 'search;
            }
            visited.insert(next.clone());
            stack.push(next);
            peak_frontier = peak_frontier.max(stack.len());
        }
    }
    let stats = ExplorationStats {
        distinct_states: visited.len(),
        duration: started.elapsed(),
        dedup_hits,
        dedup_probes,
        peak_frontier,
        threads: 1,
        steals: 0,
        pruned_arcs,
        truncation,
        worker_panics: 0,
        deadline_overshoot: Duration::ZERO,
        checkpoints: 0,
        checkpoint_time: Duration::ZERO,
        probe_steps: 0,
        table_capacity: 0,
        spilled_states: 0,
        spill_bytes: 0,
        mem_bytes: 0,
        shard_states: None,
    };
    Exploration { outcomes, states: visited.len(), deadlocks, truncation, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::ScMachine;
    use weakord_progs::litmus;

    #[test]
    fn sc_dekker_has_three_read_combinations() {
        let lit = litmus::fig1_dekker();
        for ex in [
            explore_seq(&ScMachine, &lit.program, Limits::default()),
            explore(&ScMachine, &lit.program, Limits::default()),
        ] {
            assert!(!ex.truncated());
            assert_eq!(ex.deadlocks, 0);
            // SC allows (0,1), (1,0), (1,1) but never (0,0).
            assert_eq!(ex.outcomes.len(), 3);
            assert!(ex.outcomes.iter().all(|o| !(lit.non_sc)(o)));
        }
    }

    #[test]
    fn witness_traces_name_their_internal_queues() {
        // A write-buffer run reaching the Dekker violation must delay
        // drains past the reads — and the printed trace says exactly
        // which buffer drained where, never a bare "(internal)".
        use crate::machines::{CacheDelayMachine, WriteBufferMachine};
        let lit = litmus::fig1_dekker();
        let wb =
            find_witness(&WriteBufferMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
                .expect("write-buffer reaches the Dekker violation");
        let printed: Vec<String> = wb.iter().map(|l| l.to_string()).collect();
        assert!(
            printed.iter().any(|s| s.contains("drains loc") && s.contains("to memory")),
            "expected a named drain in {printed:?}"
        );
        let cd =
            find_witness(&CacheDelayMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
                .expect("cache-delay reaches the Dekker violation");
        let printed: Vec<String> = cd.iter().map(|l| l.to_string()).collect();
        assert!(
            printed.iter().any(|s| s.contains("delivered at")),
            "expected a named delivery in {printed:?}"
        );
        for s in printed {
            assert_ne!(s, "(internal)", "internal labels must name their queue");
        }
    }

    #[test]
    fn state_cap_marks_truncation() {
        let lit = litmus::iriw();
        for ex in [
            explore_seq(&ScMachine, &lit.program, Limits::with_max_states(3)),
            explore(&ScMachine, &lit.program, Limits::with_max_states(3)),
        ] {
            assert!(ex.truncated());
            assert_eq!(ex.stats.truncation, Some(TruncationReason::MaxStates));
            assert_eq!(ex.states, 3);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_dekker() {
        let lit = litmus::fig1_dekker();
        let seq = explore_seq(&ScMachine, &lit.program, Limits::default());
        for threads in [1, 2, 8] {
            let par = explore(&ScMachine, &lit.program, Limits::with_threads(threads));
            assert_eq!(par, seq, "{threads} threads");
            assert_eq!(par.stats.threads, threads);
        }
    }

    #[test]
    fn an_exhausted_deadline_truncates() {
        let lit = litmus::iriw();
        let limits = Limits { deadline: Some(Duration::ZERO), ..Limits::default() };
        let ex = explore(&ScMachine, &lit.program, limits);
        assert!(ex.truncated());
        assert_eq!(ex.stats.truncation, Some(TruncationReason::Deadline));
    }

    #[test]
    fn stats_report_throughput_and_dedup() {
        let lit = litmus::fig1_dekker();
        let ex = explore(&ScMachine, &lit.program, Limits::with_threads(2));
        assert_eq!(ex.stats.distinct_states, ex.states);
        assert!(ex.stats.dedup_probes >= ex.stats.dedup_hits);
        assert!(ex.stats.dedup_hit_rate() > 0.0, "dekker revisits states");
        assert!(ex.stats.states_per_sec() > 0.0);
        assert!(ex.stats.peak_frontier > 0);
        assert!(ex.stats.table_capacity > 0, "parallel runs report table capacity");
        assert!(ex.stats.avg_probe_len() >= 1.0, "every probe inspects a slot");
        assert!(ex.stats.mem_bytes > 0, "unbudgeted runs keep payloads resident");
        assert_eq!(ex.stats.spilled_states, 0);
        let line = ex.stats.to_string();
        assert!(line.contains("states/s"), "{line}");
    }

    #[test]
    fn a_cancelled_token_truncates_instead_of_exploring() {
        let lit = litmus::iriw();
        let cancel = CancelToken::new();
        cancel.cancel();
        let ex = explore_with_cancel(&ScMachine, &lit.program, Limits::default(), &cancel);
        assert!(ex.truncated());
        assert_eq!(ex.stats.truncation, Some(TruncationReason::Cancelled));
        // The workers stopped before expanding anything beyond at most
        // the states already popped when the flag landed.
        assert!(ex.states < explore(&ScMachine, &lit.program, Limits::default()).states);
    }

    /// A cancelled checkpointed run leaves a resumable checkpoint: the
    /// service contract is "cancel ≈ suspend", so resuming the same
    /// config later must reach the full uninterrupted answer.
    #[test]
    fn a_cancelled_checkpointed_run_resumes_to_the_full_answer() {
        let lit = litmus::iriw();
        let dir = std::env::temp_dir().join(format!("weakord-cancel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CheckpointCfg { dir: dir.clone(), every: 1, abort_after: None, store: None };
        let cancel = CancelToken::new();
        cancel.cancel();
        let cut = explore_checkpointed_with_cancel(
            &ScMachine,
            &lit.program,
            Limits::default(),
            &cfg,
            &cancel,
        )
        .expect("cancelled run still writes its final checkpoint");
        assert_eq!(cut.stats.truncation, Some(TruncationReason::Cancelled));
        let resumed = resume_exploration(&ScMachine, &lit.program, Limits::default(), &cfg)
            .expect("cancelled checkpoint resumes");
        let clean = explore(&ScMachine, &lit.program, Limits::default());
        assert_eq!(resumed.outcomes, clean.outcomes);
        assert_eq!(resumed.states, clean.states);
        assert_eq!(resumed.deadlocks, clean.deadlocks);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Progress monitoring is pure observation: the exploration result
    /// is identical with a sink attached, the final publication matches
    /// the result, and every counter is monotone across samples.
    #[test]
    fn a_progress_sink_observes_without_perturbing() {
        let lit = litmus::iriw();
        let plain = explore(&ScMachine, &lit.program, Limits::with_threads(2));
        let sink = ProgressSink::with_interval(Duration::ZERO);
        let watched =
            explore_with_progress(&ScMachine, &lit.program, Limits::with_threads(2), None, &sink);
        assert_eq!(watched, plain, "progress must not perturb results");
        let last = sink.sample();
        assert!(last.seq > 0, "the final publication always lands");
        assert_eq!(last.states as usize, watched.states);
        assert_eq!(last.frontier, 0, "a finished run has an empty frontier");
        assert_eq!(last.dedup_probes, watched.stats.dedup_probes);
        assert!(last.elapsed > Duration::ZERO);
        assert!(last.states_per_sec() > 0.0);
        // A concurrent monitor sees monotone counters.
        let sink = ProgressSink::with_interval(Duration::ZERO);
        let (final_states, samples) = std::thread::scope(|s| {
            let monitor = {
                let sink = sink.clone();
                s.spawn(move || {
                    let mut seen = Vec::new();
                    let mut last = ProgressSnapshot::default();
                    for _ in 0..10_000 {
                        let cur = sink.sample();
                        if cur.seq != last.seq {
                            assert!(cur.states >= last.states, "states regressed");
                            assert!(cur.dedup_probes >= last.dedup_probes, "probes regressed");
                            assert!(cur.seq > last.seq, "seq regressed");
                            seen.push(cur);
                            last = cur;
                        }
                        std::thread::yield_now();
                    }
                    seen
                })
            };
            let ex = explore_with_progress(
                &ScMachine,
                &lit.program,
                Limits::with_threads(2),
                None,
                &sink,
            );
            (ex.states, monitor.join().expect("monitor thread"))
        });
        assert!(!samples.is_empty(), "at least the final publication is visible");
        assert!(samples.last().expect("non-empty").states as usize <= final_states);
    }

    /// A memory budget small enough to force spilling must not change
    /// any semantic result — the acceptance property of the disk-backed
    /// capacity path, at unit scale.
    #[test]
    fn a_tiny_memory_budget_spills_without_changing_results() {
        let lit = litmus::iriw();
        let plain = explore(&ScMachine, &lit.program, Limits::with_threads(2));
        let mut limits = Limits::with_memory_budget(1);
        limits.threads = 2;
        let spilled = explore(&ScMachine, &lit.program, limits);
        assert_eq!(spilled, plain);
        assert_eq!(spilled.stats.spilled_states as usize, spilled.states);
        assert!(spilled.stats.spill_bytes > 0);
        assert_eq!(spilled.stats.mem_bytes, 0, "payloads all went to disk");
        let line = spilled.stats.to_string();
        assert!(line.contains("spilled"), "{line}");
    }
}

/// A step of a witness trace: the label and a rendering of what it did.
pub type Witness = Vec<Label>;

/// Searches for a terminal state whose outcome satisfies `predicate`
/// and returns the transition labels leading to it (a *witness
/// interleaving*), or `None` if no reachable terminal outcome matches
/// within the limits.
///
/// Breadth-first, so the witness is one of the shortest.
pub fn find_witness<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    predicate: impl Fn(&Outcome) -> bool,
) -> Option<Witness> {
    use std::collections::HashMap;

    let initial = machine.initial(prog);
    // parent[state] = (predecessor, label taking predecessor -> state)
    let mut parent: HashMap<M::State, Option<(M::State, Label)>> = HashMap::new();
    parent.insert(initial.clone(), None);
    let mut queue = VecDeque::new();
    queue.push_back(initial);
    let mut succ: Vec<(Label, M::State)> = Vec::new();
    while let Some(state) = queue.pop_front() {
        if let Some(outcome) = machine.outcome(prog, &state) {
            if predicate(&outcome) {
                // Reconstruct the path.
                let mut labels = Vec::new();
                let mut cur = &state;
                while let Some(Some((prev, label))) = parent.get(cur) {
                    labels.push(*label);
                    cur = prev;
                }
                labels.reverse();
                return Some(labels);
            }
            continue;
        }
        succ.clear();
        machine.successors(prog, &state, &mut succ);
        for (label, next) in succ.drain(..) {
            if parent.len() >= limits.max_states {
                return None;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next.clone()) {
                e.insert(Some((state.clone(), label)));
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod witness_tests {
    use super::*;
    use crate::machines::{ScMachine, WriteBufferMachine};
    use weakord_progs::litmus;

    #[test]
    fn witness_found_for_reachable_outcome() {
        let lit = litmus::fig1_dekker();
        let w =
            find_witness(&WriteBufferMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
                .expect("write buffers can kill both processors");
        // The witness contains both reads bypassing both writes.
        let ops = w.iter().filter(|l| matches!(l, Label::Op(_))).count();
        assert!(ops >= 4, "witness too short: {w:?}");
    }

    #[test]
    fn no_witness_for_unreachable_outcome() {
        let lit = litmus::fig1_dekker();
        assert!(find_witness(&ScMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
            .is_none());
    }
}
