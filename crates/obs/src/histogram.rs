//! A log2-bucketed latency histogram for the serve layer.
//!
//! Latencies span five orders of magnitude (a cache-hit reply is
//! microseconds, a cold IRIW exploration is seconds), so linear buckets
//! are useless and exact reservoirs allocate. Power-of-two buckets give
//! ≤2× relative error on any percentile with a fixed 64-slot footprint,
//! no allocation on the record path, and a lossless `merge` for folding
//! per-worker histograms into a service-wide one.
//!
//! Values are unitless `u64`s — the serve layer records microseconds.
//! Percentile reads return the *upper bound* of the bucket holding the
//! requested rank, so reported numbers are conservative (never under-
//! state a latency) and byte-stable across runs that land in the same
//! buckets.

/// Fixed-footprint log2 histogram. `Default` is the empty histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[i]` counts values `v` with `bit_width(v) == i`, i.e.
    /// bucket 0 holds only 0, bucket i (i ≥ 1) holds `2^(i-1) ..= 2^i - 1`.
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[(u64::BITS - value.leading_zeros()) as usize] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 on an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded values (0.0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (in `0.0..=100.0`), reported as the
    /// upper bound of the bucket containing that rank — clamped to the
    /// exact observed `max` so `percentile(100.0) == max()`. Returns 0
    /// on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based: p50 of 4 samples is
        // the 2nd, p100 the 4th. ceil() keeps ranks in 1..=count for
        // p in (0, 100].
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return upper.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `(p50, p95, p99)` triple the latency tables print.
    pub fn quantile_summary(&self) -> (u64, u64, u64) {
        (self.percentile(50.0), self.percentile(95.0), self.percentile(99.0))
    }

    /// Folds the distribution into `reg` under the `ns.` prefix: the
    /// sample count as a counter, min/mean/p50/p95/p99/max as gauges.
    /// Empty histograms contribute only the zero count, so a dump does
    /// not invent quantiles for data that never arrived.
    pub fn export_metrics(&self, ns: &str, reg: &mut crate::MetricsRegistry) {
        reg.counter(format!("{ns}.count"), self.count());
        if self.is_empty() {
            return;
        }
        let (p50, p95, p99) = self.quantile_summary();
        reg.gauge(format!("{ns}.min"), self.min() as f64);
        reg.gauge(format!("{ns}.mean"), self.mean());
        reg.gauge(format!("{ns}.p50"), p50 as f64);
        reg.gauge(format!("{ns}.p95"), p95 as f64);
        reg.gauge(format!("{ns}.p99"), p99 as f64);
        reg.gauge(format!("{ns}.max"), self.max() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn export_metrics_writes_count_and_quantile_gauges() {
        let mut reg = crate::MetricsRegistry::new();
        Histogram::new().export_metrics("lat", &mut reg);
        assert_eq!(reg.get("lat.count"), 0);
        assert_eq!(reg.get_gauge("lat.p50"), None, "no quantiles without samples");
        let mut h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        h.export_metrics("lat", &mut reg);
        assert_eq!(reg.get("lat.count"), 3);
        assert_eq!(reg.get_gauge("lat.min"), Some(10.0));
        assert_eq!(reg.get_gauge("lat.max"), Some(30.0));
        assert!(reg.get_gauge("lat.p95").is_some());
    }

    #[test]
    fn percentiles_are_conservative_within_a_power_of_two() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // p50 lands in the 256..=511 bucket → reported as 511: an
        // upper bound within 2× of the true 500.
        let p50 = h.percentile(50.0);
        assert!((500..=511).contains(&p50), "{p50}");
        // p100 is exact.
        assert_eq!(h.percentile(100.0), 1000);
        // Monotone in p.
        assert!(h.percentile(95.0) <= h.percentile(99.0));
        assert!(h.percentile(50.0) <= h.percentile(95.0));
    }

    #[test]
    fn zero_and_extremes_have_homes() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), 0, "the first rank is the zero");
        assert_eq!(h.percentile(100.0), u64::MAX);
    }

    #[test]
    fn single_value_reports_itself_at_every_percentile() {
        let mut h = Histogram::new();
        h.record(42);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 42, "p{p}");
        }
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [3u64, 900, 17, 0, 250_000] {
            a.record(v);
            whole.record(v);
        }
        for v in [5u64, 12_000, 7] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        let (p50, p95, p99) = a.quantile_summary();
        assert!(p50 <= p95 && p95 <= p99);
    }
}
