//! A small text format for litmus tests and programs.
//!
//! The format is line-oriented: a `name` line, then one `thread` block
//! per processor. Locations are named and assigned indices in first-use
//! order (or declared up front with `locs` to pin the order). Labels
//! are written `label:` on their own line and referenced by name.
//!
//! ```text
//! # Dekker, hand-written
//! name my-dekker
//! locs x y
//!
//! thread
//!   write x 1
//!   read  y r0
//!   halt
//!
//! thread
//!   write y 1
//!   read  x r0
//!   halt
//! ```
//!
//! Instructions:
//!
//! | syntax | meaning |
//! |--------|---------|
//! | `read <loc> <reg>` | data read into a register |
//! | `write <loc> <val\|reg>` | data write |
//! | `test <loc> <reg>` | read-only synchronization |
//! | `set <loc> <val\|reg>` | write-only synchronization |
//! | `tas <loc> <reg>` | TestAndSet |
//! | `faa <loc> <k> <reg>` | fetch-and-add `k` |
//! | `swap <loc> <val> <reg>` | atomic swap |
//! | `fence` | full memory fence |
//! | `mov/add/sub <reg> <val\|reg>` | register arithmetic |
//! | `bz/bnz <reg> <label>`, `jmp <label>` | control flow |
//! | `delay <cycles>`, `halt` | timing / stop |

use std::collections::HashMap;
use std::fmt;

use weakord_core::{Loc, Value};

use crate::ir::{Operand, Program, Reg, ThreadBuilder};

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

#[derive(Default)]
struct Locs {
    by_name: HashMap<String, Loc>,
    next: u32,
}

impl Locs {
    fn get(&mut self, name: &str) -> Loc {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let l = Loc::new(self.next);
        self.next += 1;
        self.by_name.insert(name.to_string(), l);
        l
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let Some(n) = tok.strip_prefix('r').and_then(|n| n.parse::<u8>().ok()) else {
        return err(line, format!("expected a register (r0..r7), got `{tok}`"));
    };
    if usize::from(n) >= crate::ir::N_REGS {
        return err(line, format!("register `{tok}` out of range (r0..r7)"));
    }
    Ok(Reg::new(n))
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if tok.starts_with('r') {
        return Ok(Operand::Reg(parse_reg(tok, line)?));
    }
    match tok.parse::<u64>() {
        Ok(v) => Ok(Operand::Const(Value::new(v))),
        Err(_) => err(line, format!("expected a value or register, got `{tok}`")),
    }
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, ParseError> {
    tok.parse().map_err(|_| ParseError { line, message: format!("expected a number, got `{tok}`") })
}

/// Parses a program from the text format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for malformed
/// input, undefined labels, or programs the IR validator rejects.
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let mut name = String::from("unnamed");
    let mut locs = Locs::default();
    let mut threads = Vec::new();
    // Per-thread label bookkeeping.
    let mut builder: Option<ThreadBuilder> = None;
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut fixups: Vec<(usize, String, usize)> = Vec::new(); // (instr at, label, line)

    fn finish_thread(
        builder: &mut Option<ThreadBuilder>,
        labels: &mut HashMap<String, u32>,
        fixups: &mut Vec<(usize, String, usize)>,
        threads: &mut Vec<crate::ir::Thread>,
    ) -> Result<(), ParseError> {
        if let Some(mut b) = builder.take() {
            for (at, label, line) in fixups.drain(..) {
                match labels.get(&label) {
                    Some(&target) => {
                        b.patch(at, target);
                    }
                    None => return err(line, format!("undefined label `{label}`")),
                }
            }
            labels.clear();
            threads.push(b.finish());
        }
        Ok(())
    }

    for (i, raw) in input.lines().enumerate() {
        let line = i + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        // Label?
        if let Some(label) = text.strip_suffix(':') {
            let Some(b) = builder.as_ref() else {
                return err(line, "label outside a thread block");
            };
            if labels.insert(label.trim().to_string(), b.here()).is_some() {
                return err(line, format!("duplicate label `{label}`"));
            }
            continue;
        }
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let argc = tokens.len() - 1;
        let need = |n: usize| -> Result<(), ParseError> {
            if argc == n {
                Ok(())
            } else {
                err(line, format!("`{}` takes {n} operand(s), got {argc}", tokens[0]))
            }
        };
        match tokens[0] {
            "name" => {
                need(1)?;
                name = tokens[1].to_string();
            }
            "locs" => {
                for t in &tokens[1..] {
                    locs.get(t);
                }
            }
            "thread" => {
                need(0)?;
                finish_thread(&mut builder, &mut labels, &mut fixups, &mut threads)?;
                builder = Some(ThreadBuilder::new());
            }
            op => {
                let Some(b) = builder.as_mut() else {
                    return err(line, format!("`{op}` outside a thread block"));
                };
                match op {
                    "read" => {
                        need(2)?;
                        let loc = locs.get(tokens[1]);
                        b.read(parse_reg(tokens[2], line)?, loc);
                    }
                    "write" => {
                        need(2)?;
                        let loc = locs.get(tokens[1]);
                        b.write(loc, parse_operand(tokens[2], line)?);
                    }
                    "test" => {
                        need(2)?;
                        let loc = locs.get(tokens[1]);
                        b.sync_read(parse_reg(tokens[2], line)?, loc);
                    }
                    "set" => {
                        need(2)?;
                        let loc = locs.get(tokens[1]);
                        b.sync_write(loc, parse_operand(tokens[2], line)?);
                    }
                    "tas" => {
                        need(2)?;
                        let loc = locs.get(tokens[1]);
                        b.test_and_set(parse_reg(tokens[2], line)?, loc);
                    }
                    "faa" => {
                        need(3)?;
                        let loc = locs.get(tokens[1]);
                        let k = parse_u64(tokens[2], line)?;
                        b.fetch_add(parse_reg(tokens[3], line)?, loc, k);
                    }
                    "swap" => {
                        need(3)?;
                        let loc = locs.get(tokens[1]);
                        let v = Value::new(parse_u64(tokens[2], line)?);
                        b.swap(parse_reg(tokens[3], line)?, loc, v);
                    }
                    "fence" => {
                        need(0)?;
                        b.fence();
                    }
                    "mov" => {
                        need(2)?;
                        let dst = parse_reg(tokens[1], line)?;
                        b.mov(dst, parse_operand(tokens[2], line)?);
                    }
                    "add" => {
                        need(2)?;
                        let dst = parse_reg(tokens[1], line)?;
                        b.add(dst, parse_operand(tokens[2], line)?);
                    }
                    "sub" => {
                        need(2)?;
                        let dst = parse_reg(tokens[1], line)?;
                        b.sub(dst, parse_operand(tokens[2], line)?);
                    }
                    "bz" | "bnz" => {
                        need(2)?;
                        let reg = parse_reg(tokens[1], line)?;
                        let at = if op == "bz" {
                            b.branch_zero_placeholder(reg)
                        } else {
                            b.branch_non_zero_placeholder(reg)
                        };
                        fixups.push((at, tokens[2].to_string(), line));
                    }
                    "jmp" => {
                        need(1)?;
                        let at = b.jump_placeholder();
                        fixups.push((at, tokens[1].to_string(), line));
                    }
                    "delay" => {
                        need(1)?;
                        let c = parse_u64(tokens[1], line)?;
                        b.delay(
                            u32::try_from(c).map_err(|_| ParseError {
                                line,
                                message: "delay too large".into(),
                            })?,
                        );
                    }
                    "halt" => {
                        need(0)?;
                        b.halt();
                    }
                    other => return err(line, format!("unknown instruction `{other}`")),
                }
            }
        }
    }
    finish_thread(&mut builder, &mut labels, &mut fixups, &mut threads)?;
    if threads.is_empty() {
        return err(input.lines().count().max(1), "no thread blocks");
    }
    Program::new(name, threads, locs.next)
        .map_err(|e| ParseError { line: 0, message: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Instr;

    const DEKKER: &str = "\n# Dekker\nname my-dekker\nlocs x y\n\nthread\n  write x 1\n  read y r0\n  halt\n\nthread\n  write y 1\n  read x r0\n  halt\n";

    #[test]
    fn parses_dekker() {
        let p = parse_program(DEKKER).unwrap();
        assert_eq!(p.name, "my-dekker");
        assert_eq!(p.n_procs(), 2);
        assert_eq!(p.n_locs, 2);
        assert_eq!(p.threads[0].instrs.len(), 3);
        assert!(matches!(p.threads[0].instrs[0], Instr::Write { .. }));
    }

    #[test]
    fn parsed_dekker_matches_the_builtin() {
        let p = parse_program(DEKKER).unwrap();
        let builtin = crate::litmus::fig1_dekker().program;
        assert_eq!(p.threads, builtin.threads);
    }

    #[test]
    fn labels_and_branches() {
        let src =
            "name spin\nthread\nagain:\n  test flag r0\n  bz r0 again\n  read data r1\n  halt\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.threads[0].instrs[1], Instr::BranchZero { reg: Reg::new(0), target: 0 });
    }

    #[test]
    fn forward_labels_work() {
        let src = "name fwd\nthread\n  read x r0\n  bnz r0 end\n  write y 1\nend:\n  halt\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.threads[0].instrs[1], Instr::BranchNonZero { reg: Reg::new(0), target: 3 });
    }

    #[test]
    fn rmw_forms() {
        let src = "name rmws\nthread\n  tas l r0\n  faa c 2 r1\n  swap s 0 r2\n  halt\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.threads[0].instrs.len(), 4);
        assert_eq!(p.n_locs, 3);
    }

    #[test]
    fn fence_parses_and_round_trips() {
        let src = "name fenced\nthread\n  write x 1\n  fence\n  read y r0\n  halt\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.threads[0].instrs[1], Instr::Fence);
        let back = parse_program(&unparse_program(&p)).unwrap();
        assert_eq!(back.threads, p.threads);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let src = "name bad\nthread\n  jmp nowhere\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("undefined label"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn unknown_instruction_is_an_error() {
        let e = parse_program("name bad\nthread\n  frobnicate x\n").unwrap_err();
        assert!(e.to_string().contains("unknown instruction"), "{e}");
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let e = parse_program("name bad\nthread\n  read x\n").unwrap_err();
        assert!(e.message.contains("takes 2 operand(s)"), "{e}");
    }

    #[test]
    fn instructions_outside_thread_are_an_error() {
        let e = parse_program("name bad\nwrite x 1\n").unwrap_err();
        assert!(e.message.contains("outside a thread block"), "{e}");
    }

    #[test]
    fn bad_register_is_an_error() {
        let e = parse_program("name bad\nthread\n  read x r9\n").unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_program("").is_err());
        assert!(parse_program("name x\n").is_err());
    }

    #[test]
    fn missing_halt_is_reported_via_validation() {
        let e = parse_program("name bad\nthread\n  write x 1\n").unwrap_err();
        assert!(e.message.contains("past the end"), "{e}");
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let src = "# header\nname ok\n\nthread\n  halt  # stop\n";
        assert!(parse_program(src).is_ok());
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let src = "name bad\nthread\nl:\nl:\n  halt\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.message.contains("duplicate label"), "{e}");
    }

    #[test]
    fn locs_directive_pins_indices() {
        let src = "name ok\nlocs b a\nthread\n  write a 1\n  write b 2\n  halt\n";
        let p = parse_program(src).unwrap();
        // `b` was declared first → index 0; the write order is a then b.
        assert_eq!(
            p.threads[0].instrs[0],
            Instr::Write { loc: Loc::new(1), src: Operand::Const(Value::new(1)) }
        );
    }
}

/// Renders a program in the text format accepted by [`parse_program`]
/// (labels are synthesized as `L<n>` at branch targets). The round trip
/// `parse_program(&unparse_program(p))` reproduces `p` exactly up to
/// location *indices* — names are `l<index>`, declared with `locs` in
/// index order so indices survive.
pub fn unparse_program(prog: &Program) -> String {
    use crate::ir::Instr;
    let mut out = String::new();
    out.push_str(&format!("name {}\n", prog.name.replace(' ', "-")));
    if prog.n_locs > 0 {
        out.push_str("locs");
        for l in 0..prog.n_locs {
            out.push_str(&format!(" l{l}"));
        }
        out.push('\n');
    }
    let operand = |o: &Operand| match o {
        Operand::Const(v) => v.to_string(),
        Operand::Reg(r) => r.to_string(),
    };
    for thread in &prog.threads {
        out.push_str("\nthread\n");
        // Collect branch targets needing labels.
        let mut targets: Vec<u32> = thread
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::BranchZero { target, .. }
                | Instr::BranchNonZero { target, .. }
                | Instr::Jump { target } => Some(*target),
                _ => None,
            })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let label = |t: u32| format!("L{t}");
        for (i, instr) in thread.instrs.iter().enumerate() {
            if targets.contains(&(i as u32)) {
                out.push_str(&format!("{}:\n", label(i as u32)));
            }
            let line = match instr {
                Instr::Read { dst, loc } => format!("read l{} {dst}", loc.raw()),
                Instr::Write { loc, src } => format!("write l{} {}", loc.raw(), operand(src)),
                Instr::SyncRead { dst, loc } => format!("test l{} {dst}", loc.raw()),
                Instr::SyncWrite { loc, src } => format!("set l{} {}", loc.raw(), operand(src)),
                Instr::SyncRmw { dst, loc, op } => match op {
                    crate::ir::RmwOp::TestAndSet => format!("tas l{} {dst}", loc.raw()),
                    crate::ir::RmwOp::FetchAdd(k) => format!("faa l{} {k} {dst}", loc.raw()),
                    crate::ir::RmwOp::Swap(v) => format!("swap l{} {v} {dst}", loc.raw()),
                },
                Instr::BranchZero { reg, target } => format!("bz {reg} {}", label(*target)),
                Instr::BranchNonZero { reg, target } => format!("bnz {reg} {}", label(*target)),
                Instr::Jump { target } => format!("jmp {}", label(*target)),
                Instr::Move { dst, src } => format!("mov {dst} {}", operand(src)),
                Instr::Add { dst, src } => format!("add {dst} {}", operand(src)),
                Instr::Sub { dst, src } => format!("sub {dst} {}", operand(src)),
                Instr::Fence => "fence".to_string(),
                Instr::Delay { cycles } => format!("delay {cycles}"),
                Instr::Halt => "halt".to_string(),
            };
            out.push_str("  ");
            out.push_str(&line);
            out.push('\n');
        }
        // A trailing label (target == instrs.len()) cannot occur: the
        // validator requires targets in range.
    }
    out
}

#[cfg(test)]
mod unparse_tests {
    use super::*;
    use crate::{gen, litmus, workloads};

    fn roundtrip(prog: &Program) {
        let text = unparse_program(prog);
        let back = parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", prog.name));
        assert_eq!(back.threads, prog.threads, "{}\n{text}", prog.name);
        assert_eq!(back.n_locs, prog.n_locs);
    }

    #[test]
    fn litmus_suite_round_trips() {
        for lit in litmus::all() {
            roundtrip(&lit.program);
        }
    }

    #[test]
    fn workloads_round_trip() {
        roundtrip(&workloads::fig3_scenario(Default::default()));
        roundtrip(&workloads::spinlock(Default::default()));
        roundtrip(&workloads::spinlock_tts(Default::default()));
        roundtrip(&workloads::ticket_lock(Default::default()));
        roundtrip(&workloads::barrier(Default::default()));
        roundtrip(&workloads::tree_barrier(Default::default()));
        roundtrip(&workloads::producer_consumer(Default::default()));
        roundtrip(&workloads::spin_broadcast(Default::default()));
        roundtrip(&workloads::async_flood(Default::default()));
    }

    #[test]
    fn generated_programs_round_trip() {
        for seed in 0..12 {
            roundtrip(&gen::race_free(seed, gen::GenParams::default()));
            roundtrip(&gen::racy(seed, gen::GenParams::default()));
        }
    }

    #[test]
    fn unparsed_text_is_readable() {
        let text = unparse_program(&litmus::mp_sync().program);
        assert!(text.contains("name mp-sync"));
        assert!(text.contains("set l1 1"), "{text}");
        assert!(text.contains("L0:"), "spin label synthesized: {text}");
        assert!(text.contains("bz r0 L0"), "{text}");
    }
}
