//! E6 / Section 5.3 termination: time the liveness sweep (every
//! workload × policy finishing without deadlock).

#[cfg(feature = "bench")]
use criterion::{criterion_group, criterion_main, Criterion};
#[cfg(feature = "bench")]
use std::hint::black_box;
#[cfg(feature = "bench")]
use weakord_bench::experiments;
#[cfg(feature = "bench")]
use weakord_coherence::{CoherentMachine, Config, Policy};
#[cfg(feature = "bench")]
use weakord_progs::workloads::{producer_consumer, spinlock, PcParams, SpinlockParams};

#[cfg(feature = "bench")]
fn bench(c: &mut Criterion) {
    println!("{}", experiments::e6_termination(3).render());
    let mut group = c.benchmark_group("e6_termination");
    let spin = spinlock(SpinlockParams::default());
    let pc = producer_consumer(PcParams::default());
    for policy in [Policy::Def1, Policy::def2()] {
        group.bench_function(format!("spinlock/{}", policy.name()), |b| {
            b.iter(|| {
                let cfg = Config { policy, seed: 3, ..Config::default() };
                CoherentMachine::new(black_box(&spin), cfg).run().expect("terminates").cycles
            })
        });
        group.bench_function(format!("producer-consumer/{}", policy.name()), |b| {
            b.iter(|| {
                let cfg = Config { policy, seed: 3, ..Config::default() };
                CoherentMachine::new(black_box(&pc), cfg).run().expect("terminates").cycles
            })
        });
    }
    group.finish();
}

#[cfg(feature = "bench")]
fn config() -> Criterion {
    // Keep full-workspace bench runs quick: the quantities of interest
    // (cycle counts, message counts) are deterministic; wall-clock
    // timing is secondary.
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

#[cfg(feature = "bench")]
criterion_group! {
    name = benches;
    config = config();
    targets = bench
}
#[cfg(feature = "bench")]
criterion_main!(benches);

/// Stub entry point for hermetic builds: the real harness needs the
/// `bench` feature (and the criterion dev-dependency it documents).
#[cfg(not(feature = "bench"))]
fn main() {
    eprintln!(
        "bench `e6_termination` is a no-op without `--features bench`; see crates/bench/Cargo.toml"
    );
}
