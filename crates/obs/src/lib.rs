//! In-tree tracing & metrics for weakord: causally-ordered event
//! traces, a unified metrics registry, and Chrome-trace/JSONL
//! exporters.
//!
//! This crate is the *bottom* of the workspace dependency graph — it
//! depends on nothing (not even other weakord crates) so that `sim`,
//! `coherence`, and `mc` can all instrument themselves against one
//! shared event model without cycles.
//!
//! The pieces:
//!
//! - [`Event`] / [`Track`] / [`Phase`] — the `Copy`, heap-free event
//!   model. Each event lands on one timeline (a processor, a directory
//!   bank, a memory line, an explorer shard) at a cycle timestamp.
//! - [`Tracer`] — the sink trait. [`NoopTracer`] is the zero-cost
//!   default (the coherent machine is generic over the tracer, so the
//!   no-op path monomorphizes to nothing); [`MemTracer`] records
//!   everything; [`RingTracer`] keeps a bounded recent window for stall
//!   diagnosis.
//! - [`MetricsRegistry`] — the namespaced `key=value` facade that the
//!   scattered per-layer counter bags fold into.
//! - [`Histogram`] — the fixed-footprint log2 latency histogram the
//!   serve layer records per-job latencies into (p50/p95/p99 with ≤2×
//!   relative error, lossless merge across workers).
//! - [`chrome_trace`] / [`jsonl`] — deterministic exporters, plus
//!   [`validate_chrome_trace`] and a minimal in-tree [`json`] reader so
//!   CI can check the exported shape without external tools.
//!
//! The invariant the whole design serves: **tracing off must cost
//! nothing**. Instrumentation sites gate on [`Tracer::enabled`] before
//! building events, events never allocate, and the workspace overhead
//! test pins the no-op path to zero heap allocations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod event;
mod export;
mod histogram;
pub mod json;
mod metrics;
mod tracer;

pub use event::{Event, Phase, Track};
pub use export::{chrome_trace, jsonl, track_ids, validate_chrome_trace};
pub use histogram::Histogram;
pub use metrics::MetricsRegistry;
pub use tracer::{MemTracer, NoopTracer, RingTracer, Tracer};
