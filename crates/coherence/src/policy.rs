//! Processor ordering policies: who waits, and for what.
//!
//! The policies are the experimental axis of the reproduction:
//!
//! * [`Policy::Sc`] — the sufficient condition for sequential
//!   consistency from Scheurich & Dubois: no access issues until the
//!   previous access is globally performed.
//! * [`Policy::Def1`] — Dubois/Scheurich/Briggs weak ordering
//!   (Definition 1): data accesses overlap freely, but a
//!   synchronization operation may not issue until all the processor's
//!   previous accesses are globally performed, and nothing issues until
//!   the synchronization operation is itself globally performed.
//! * [`Policy::Def2`] — the paper's Section 5.3 implementation: the
//!   issuing processor only waits for the synchronization operation to
//!   *commit* (line procured exclusive, operation applied); if its
//!   outstanding-access counter is positive the line is *reserved* and
//!   the wait is exported to the next processor that synchronizes on the
//!   same location. `drf1_refined` additionally takes read-only
//!   synchronization through the shared-copy path (Section 6), and
//!   `miss_cap` bounds misses issued while a reserve is held (the
//!   bounded-increment fix of Section 5.3).

use std::fmt;

use weakord_progs::Access;

/// How long the core must wait after issuing an access before executing
/// the next instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitFor {
    /// Continue immediately (completion tracked by the counter).
    Nothing,
    /// Wait until the read value returns (every read does at least this).
    Value,
    /// Wait until the operation commits in the local cache.
    Commit,
    /// Wait until the operation is globally performed.
    GloballyPerformed,
}

/// A processor ordering policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strong sufficient condition for sequential consistency.
    Sc,
    /// Definition 1 weak ordering.
    Def1,
    /// The Section 5.3 implementation (Definition 2 w.r.t. DRF0).
    Def2 {
        /// Section 6 refinement: `Test` goes through the shared-copy
        /// path, does not reserve, and does not serialize.
        drf1_refined: bool,
        /// Maximum misses the processor may send to memory while it
        /// holds any reserved line (`None` = unlimited).
        miss_cap: Option<u32>,
    },
}

impl Policy {
    /// The plain Section 5.3 implementation.
    pub fn def2() -> Policy {
        Policy::Def2 { drf1_refined: false, miss_cap: None }
    }

    /// The Section 6 refined implementation.
    pub fn def2_drf1() -> Policy {
        Policy::Def2 { drf1_refined: true, miss_cap: None }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Sc => "sc",
            Policy::Def1 => "def1",
            Policy::Def2 { drf1_refined: false, .. } => "def2",
            Policy::Def2 { drf1_refined: true, .. } => "def2-drf1",
        }
    }

    /// Must the core wait for the counter to read zero before *issuing*
    /// this access? (Definition 1's stall-the-issuer rule; under SC the
    /// per-access [`Policy::wait_for`] already serializes everything.)
    pub fn gate_on_counter(&self, access: &Access) -> bool {
        match self {
            Policy::Sc => false,
            Policy::Def1 => access.is_sync(),
            Policy::Def2 { .. } => false,
        }
    }

    /// What the core waits for after issuing the access.
    pub fn wait_for(&self, access: &Access) -> WaitFor {
        match self {
            Policy::Sc => WaitFor::GloballyPerformed,
            Policy::Def1 => {
                if access.is_sync() {
                    WaitFor::GloballyPerformed
                } else if access.has_read() {
                    WaitFor::Value
                } else {
                    WaitFor::Nothing
                }
            }
            Policy::Def2 { drf1_refined, .. } => {
                if *drf1_refined && matches!(access, Access::Read { sync: true, .. }) {
                    // A Test is a plain shared-copy read.
                    WaitFor::Value
                } else if access.is_sync() {
                    WaitFor::Commit
                } else if access.has_read() {
                    WaitFor::Value
                } else {
                    WaitFor::Nothing
                }
            }
        }
    }

    /// Does this synchronization access procure the line exclusive and
    /// set the reserve machinery in motion? (`false` routes it through
    /// the ordinary read path.)
    pub fn sync_takes_exclusive(&self, access: &Access) -> bool {
        debug_assert!(access.is_sync());
        match self {
            Policy::Def2 { drf1_refined: true, .. } => {
                !matches!(access, Access::Read { sync: true, .. })
            }
            _ => true,
        }
    }

    /// Does a committed synchronization operation reserve its line while
    /// the counter is positive? Only the Definition 2 implementation
    /// uses reserve bits.
    pub fn uses_reserve(&self) -> bool {
        matches!(self, Policy::Def2 { .. })
    }

    /// The miss cap, if any.
    pub fn miss_cap(&self) -> Option<u32> {
        match self {
            Policy::Def2 { miss_cap, .. } => *miss_cap,
            _ => None,
        }
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakord_core::{Loc, Value};

    fn data_write() -> Access {
        Access::Write { loc: Loc::new(0), value: Value::new(1), sync: false }
    }

    fn data_read() -> Access {
        Access::Read { loc: Loc::new(0), sync: false }
    }

    fn sync_write() -> Access {
        Access::Write { loc: Loc::new(0), value: Value::new(1), sync: true }
    }

    fn test_op() -> Access {
        Access::Read { loc: Loc::new(0), sync: true }
    }

    #[test]
    fn sc_waits_for_global_perform_on_everything() {
        assert_eq!(Policy::Sc.wait_for(&data_write()), WaitFor::GloballyPerformed);
        assert_eq!(Policy::Sc.wait_for(&data_read()), WaitFor::GloballyPerformed);
        assert!(!Policy::Sc.gate_on_counter(&sync_write()));
    }

    #[test]
    fn def1_stalls_the_issuer_at_syncs_only() {
        assert!(Policy::Def1.gate_on_counter(&sync_write()));
        assert!(!Policy::Def1.gate_on_counter(&data_write()));
        assert_eq!(Policy::Def1.wait_for(&data_write()), WaitFor::Nothing);
        assert_eq!(Policy::Def1.wait_for(&data_read()), WaitFor::Value);
        assert_eq!(Policy::Def1.wait_for(&sync_write()), WaitFor::GloballyPerformed);
    }

    #[test]
    fn def2_waits_only_for_commit_at_syncs() {
        let p = Policy::def2();
        assert!(!p.gate_on_counter(&sync_write()));
        assert_eq!(p.wait_for(&sync_write()), WaitFor::Commit);
        assert_eq!(p.wait_for(&data_write()), WaitFor::Nothing);
        assert!(p.uses_reserve());
        assert!(p.sync_takes_exclusive(&test_op()));
    }

    #[test]
    fn def2_drf1_demotes_tests_to_shared_reads() {
        let p = Policy::def2_drf1();
        assert_eq!(p.wait_for(&test_op()), WaitFor::Value);
        assert!(!p.sync_takes_exclusive(&test_op()));
        assert!(p.sync_takes_exclusive(&sync_write()));
        assert_eq!(p.wait_for(&sync_write()), WaitFor::Commit);
    }

    #[test]
    fn names_and_caps() {
        assert_eq!(Policy::Sc.name(), "sc");
        assert_eq!(Policy::def2().to_string(), "def2");
        assert_eq!(Policy::Def2 { drf1_refined: false, miss_cap: Some(4) }.miss_cap(), Some(4));
        assert_eq!(Policy::Def1.miss_cap(), None);
    }
}
