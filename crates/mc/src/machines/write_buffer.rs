//! Figure 1, configurations 1 and 3: processors with FIFO write buffers
//! in front of an otherwise atomic memory ("reads are allowed to pass
//! writes in write buffers"). The paper notes the violation arises the
//! same way on a shared bus without caches and on a coherent bus — the
//! coherent ensemble behaves like one atomic memory, so a single model
//! covers both configurations.

use std::collections::VecDeque;

use weakord_core::{Loc, ProcId, Value};

use crate::checkpoint::{Codec, DecodeError, Reader};
use weakord_progs::{Access, Outcome, Program, ThreadEvent, ThreadState};

use crate::machine::{
    advance_skipping_delays, outcome_if_halted, DeliveryClass, InternalStep, Label, Machine,
    OpRecord, ReductionClass, SyncGate,
};

/// A TSO-style machine: writes enter a per-processor FIFO buffer and
/// drain to memory asynchronously; reads consult the own buffer first
/// (store forwarding) and otherwise bypass buffered writes to read
/// memory directly. Read-modify-writes drain the buffer and execute
/// atomically. This hardware has **no** synchronization support beyond
/// RMW atomicity: `Test`/`Set` behave like data accesses.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteBufferMachine;

/// State of [`WriteBufferMachine`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WbState {
    /// Architectural thread states.
    pub threads: Vec<ThreadState>,
    /// Memory behind the buffers.
    pub mem: Vec<Value>,
    /// Per-processor FIFO write buffers.
    pub buffers: Vec<VecDeque<(Loc, Value)>>,
}

impl WbState {
    fn forwarded(&self, t: usize, loc: Loc) -> Option<Value> {
        self.buffers[t].iter().rev().find(|(l, _)| *l == loc).map(|(_, v)| *v)
    }
}

impl Machine for WriteBufferMachine {
    type State = WbState;

    fn name(&self) -> &'static str {
        "write-buffer"
    }

    fn initial(&self, prog: &Program) -> WbState {
        WbState {
            threads: weakord_progs::initial_threads(prog),
            mem: vec![Value::ZERO; prog.n_locs as usize],
            buffers: vec![VecDeque::new(); prog.n_procs()],
        }
    }

    fn successors(&self, prog: &Program, state: &WbState, out: &mut Vec<(Label, WbState)>) {
        // Thread transitions.
        for t in 0..state.threads.len() {
            if state.threads[t].is_halted() {
                continue;
            }
            let thread = &prog.threads[t];
            let mut next = state.clone();
            let access = match advance_skipping_delays(&mut next.threads[t], thread) {
                ThreadEvent::Access(access) => access,
                ThreadEvent::Fence => {
                    // MFENCE: executable only once the issuer's own
                    // buffer has drained; completing it then touches
                    // nothing. (Even sync-oblivious hardware honors an
                    // explicit fence — it is the one ordering primitive
                    // Figure 1's configurations were assumed to lack.)
                    if !next.buffers[t].is_empty() {
                        continue;
                    }
                    next.threads[t].complete(thread, None);
                    out.push((Label::Internal(InternalStep::fence(ProcId::new(t as u16))), next));
                    continue;
                }
                // The advance reached Halt: keep the halted thread state.
                _ => {
                    out.push((Label::Internal(InternalStep::halt(ProcId::new(t as u16))), next));
                    continue;
                }
            };
            let proc = ProcId::new(t as u16);
            let kind = access.op_kind();
            let loc = access.loc();
            match access {
                Access::Read { .. } => {
                    let v = next.forwarded(t, loc).unwrap_or(next.mem[loc.index()]);
                    next.threads[t].complete(thread, Some(v));
                    let rec =
                        OpRecord { proc, kind, loc, read_value: Some(v), written_value: None };
                    out.push((Label::Op(rec), next));
                }
                Access::Write { value, .. } => {
                    next.buffers[t].push_back((loc, value));
                    next.threads[t].complete(thread, None);
                    let rec =
                        OpRecord { proc, kind, loc, read_value: None, written_value: Some(value) };
                    out.push((Label::Op(rec), next));
                }
                Access::Rmw { op, .. } => {
                    // Atomic only with an empty buffer (the bus is locked
                    // for the duration; pending writes drain first).
                    if !next.buffers[t].is_empty() {
                        continue;
                    }
                    let old = next.mem[loc.index()];
                    let new = op.apply(old);
                    next.mem[loc.index()] = new;
                    next.threads[t].complete(thread, Some(old));
                    let rec = OpRecord {
                        proc,
                        kind,
                        loc,
                        read_value: Some(old),
                        written_value: Some(new),
                    };
                    out.push((Label::Op(rec), next));
                }
            }
        }
        // Buffer drains.
        for t in 0..state.buffers.len() {
            if state.buffers[t].is_empty() {
                continue;
            }
            let mut next = state.clone();
            let (loc, v) = next.buffers[t].pop_front().expect("non-empty");
            next.mem[loc.index()] = v;
            out.push((Label::Internal(InternalStep::drain(ProcId::new(t as u16), loc)), next));
        }
    }

    fn outcome(&self, _prog: &Program, state: &WbState) -> Option<Outcome> {
        if state.buffers.iter().any(|b| !b.is_empty()) {
            return None;
        }
        outcome_if_halted(&state.threads, state.mem.clone())
    }

    fn threads<'a>(&self, state: &'a WbState) -> &'a [ThreadState] {
        &state.threads
    }

    fn reduction_class(&self) -> ReductionClass {
        // RMWs gate only on the issuer's *own* buffer (a same-processor
        // dependence); drains write the single shared memory.
        ReductionClass { sync_gate: SyncGate::None, delivery: DeliveryClass::Memory }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, Limits};
    use crate::machines::ScMachine;
    use weakord_progs::litmus;

    #[test]
    fn dekker_violation_is_possible() {
        let lit = litmus::fig1_dekker();
        let ex = explore(&WriteBufferMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().any(|o| (lit.non_sc)(o)), "write buffers must allow Figure 1");
        assert_eq!(ex.deadlocks, 0);
    }

    #[test]
    fn mp_is_still_forbidden_by_fifo_buffers() {
        // FIFO drain order preserves the data-before-flag order, so the
        // stale-data outcome is impossible (TSO behaviour).
        let lit = litmus::mp();
        let ex = explore(&WriteBufferMachine, &lit.program, Limits::default());
        assert!(ex.outcomes.iter().all(|o| !(lit.non_sc)(o)));
    }

    #[test]
    fn store_forwarding_lets_a_processor_see_its_own_buffered_write() {
        use weakord_core::Loc;
        use weakord_progs::{Reg, ThreadBuilder};
        let mut t = ThreadBuilder::new();
        t.write(Loc::new(0), 9u64);
        t.read(Reg::new(0), Loc::new(0));
        t.halt();
        let prog = Program::new("fwd", vec![t.finish()], 1).unwrap();
        let ex = explore(&WriteBufferMachine, &prog, Limits::default());
        for o in &ex.outcomes {
            assert_eq!(o.reg(0, Reg::new(0)), Value::new(9));
        }
    }

    #[test]
    fn outcome_set_is_superset_of_sc() {
        // Weakening hardware only adds behaviours.
        for lit in litmus::all() {
            let sc = explore(&ScMachine, &lit.program, Limits::default());
            let wb = explore(&WriteBufferMachine, &lit.program, Limits::default());
            assert!(
                wb.outcomes.is_superset(&sc.outcomes),
                "{}: write-buffer lost SC outcomes",
                lit.name
            );
        }
    }
}

impl Codec for WbState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.threads.encode(out);
        self.mem.encode(out);
        self.buffers.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(WbState { threads: Vec::decode(r)?, mem: Vec::decode(r)?, buffers: Vec::decode(r)? })
    }
}
