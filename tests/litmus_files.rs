//! The shipped `litmus/*.litmus` sample files stay parseable, valid,
//! and well-behaved: every file round-trips through the text format and
//! explores cleanly on the reference machine.

use std::fs;

use weakord::mc::machines::ScMachine;
use weakord::mc::{explore, Limits};
use weakord::progs::{parse_program, unparse_program};

#[test]
fn shipped_litmus_files_parse_and_explore() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus");
    let mut found = 0;
    for entry in fs::read_dir(dir).expect("litmus/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("litmus") {
            continue;
        }
        found += 1;
        let src = fs::read_to_string(&path).expect("readable");
        let prog = parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        prog.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Round-trip stability.
        let back = parse_program(&unparse_program(&prog)).expect("round trip");
        assert_eq!(back.threads, prog.threads, "{}", path.display());
        // Explores without deadlock or truncation.
        let ex = explore(&ScMachine, &prog, Limits::default());
        assert!(!ex.truncated(), "{}", path.display());
        assert_eq!(ex.deadlocks, 0, "{}", path.display());
        assert!(!ex.outcomes.is_empty(), "{}", path.display());
    }
    assert!(found >= 7, "expected the shipped sample files, found {found}");
}

fn load(file: &str) -> weakord::progs::Program {
    let path = format!(concat!(env!("CARGO_MANIFEST_DIR"), "/litmus/{}"), file);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    parse_program(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// The IRIW split observation — each reader sees the *other* write as
/// missing — is forbidden under SC but reachable on the Definition 2
/// weak-ordering machine (the program is racy, so the contract makes
/// no SC promise for it).
#[test]
fn iriw_split_forbidden_under_sc_allowed_under_wo() {
    use weakord::core::Value;
    use weakord::mc::machines::WoDef2Machine;
    use weakord::progs::Reg;
    let prog = load("iriw.litmus");
    let (r0, r1) = (Reg::new(0), Reg::new(1));
    let split = |o: &weakord::progs::Outcome| {
        o.reg(2, r0) == Value::new(1)
            && o.reg(2, r1) == Value::ZERO
            && o.reg(3, r0) == Value::new(1)
            && o.reg(3, r1) == Value::ZERO
    };
    let sc = explore(&ScMachine, &prog, Limits::default());
    assert!(!sc.truncated());
    assert!(!sc.outcomes.iter().any(split), "SC must forbid the IRIW split");
    let wo = explore(&WoDef2Machine::default(), &prog, Limits::default());
    assert!(!wo.truncated());
    assert!(wo.outcomes.iter().any(split), "wo-def2 should reach the IRIW split");
    // Everything the weak machine adds over SC is exactly that split.
    let extra: Vec<_> = wo.outcomes.difference(&sc.outcomes).collect();
    assert!(extra.iter().all(|o| split(o)), "unexpected non-SC outcomes: {extra:?}");
}

/// Coherence (per-location write serialization) holds on every machine:
/// no reader may observe the second write to `x` and then the first.
#[test]
fn coherence_co_holds_on_all_machines() {
    use weakord::core::Value;
    use weakord::mc::machines::{
        CacheDelayMachine, NetReorderMachine, PsoMachine, TsoMachine, WoDef1Machine, WoDef2Machine,
        WriteBufferMachine,
    };
    use weakord::mc::Machine;
    use weakord::progs::Reg;
    let prog = load("coherence-co.litmus");
    let (r0, r1) = (Reg::new(0), Reg::new(1));
    fn check<M: Machine>(
        m: &M,
        prog: &weakord::progs::Program,
        backwards: impl Fn(&weakord::progs::Outcome) -> bool,
    ) {
        let ex = explore(m, prog, Limits::default());
        assert!(!ex.truncated());
        assert!(!ex.outcomes.iter().any(backwards), "{} violated per-location coherence", m.name());
    }
    let backwards = |o: &weakord::progs::Outcome| {
        o.reg(1, r0) == Value::new(2) && o.reg(1, r1) == Value::new(1)
    };
    check(&ScMachine, &prog, backwards);
    check(&WriteBufferMachine, &prog, backwards);
    check(&TsoMachine, &prog, backwards);
    check(&PsoMachine, &prog, backwards);
    check(&NetReorderMachine, &prog, backwards);
    check(&CacheDelayMachine, &prog, backwards);
    check(&WoDef1Machine, &prog, backwards);
    check(&WoDef2Machine::default(), &prog, backwards);
}

/// The full conformance matrix: every shipped `litmus/*.litmus` file ×
/// every model-checked machine, pinned to the expected allowed/forbidden
/// split for that file's characteristic relaxed outcome — and the split
/// must be reproduced exactly by the partial-order-reduced search.
///
/// The rows tell the paper's story file by file: `dekker` needs only a
/// write buffer to break; `iriw` additionally needs non-atomic stores
/// (the cache substrate); `coherence-co` is per-location order, which
/// every machine serializes; and the synchronized programs
/// (`counter`, `lock-handoff`, `mp-handshake`, `nack-livelock`) are kept SC by every
/// *weakly ordered* machine but break on the unordered `net-reorder`
/// and `cache-delay` configurations, which honor no synchronization.
#[test]
fn conformance_matrix_on_every_machine_full_and_reduced() {
    use weakord::core::Value;
    use weakord::mc::machines::{
        BnrMachine, CacheDelayMachine, NetReorderMachine, PsoMachine, TsoMachine, WoDef1Machine,
        WoDef2Machine, WriteBufferMachine,
    };
    use weakord::mc::{explore_reduced, Machine};
    use weakord::progs::{Outcome, Program, Reg};

    // Machine order: sc, write-buffer, tso, pso, net-reorder,
    // cache-delay, wo-def1, wo-def2, wo-def2-drf1, wo-bnr.
    const N_MACHINES: usize = 10;
    fn verdicts(
        prog: &Program,
        pred: &dyn Fn(&Outcome) -> bool,
        reduce: bool,
    ) -> [bool; N_MACHINES] {
        fn one<M: Machine>(
            m: &M,
            prog: &Program,
            pred: &dyn Fn(&Outcome) -> bool,
            reduce: bool,
        ) -> bool {
            let limits = if reduce { Limits::reduced() } else { Limits::default() };
            let ex = explore(m, prog, limits);
            assert!(!ex.truncated(), "{} truncated on `{}`", m.name(), prog.name);
            assert_eq!(ex.deadlocks, 0, "{} deadlocked on `{}`", m.name(), prog.name);
            if reduce {
                // The dedicated sleep-set engine must agree with the
                // ample-only knob exactly, file by file.
                let red = explore_reduced(m, prog, Limits::default());
                assert_eq!(red.outcomes, ex.outcomes, "{} on `{}`", m.name(), prog.name);
                assert_eq!(red.deadlocks, 0, "{} on `{}`", m.name(), prog.name);
            }
            ex.outcomes.iter().any(pred)
        }
        [
            one(&ScMachine, prog, pred, reduce),
            one(&WriteBufferMachine, prog, pred, reduce),
            one(&TsoMachine, prog, pred, reduce),
            one(&PsoMachine, prog, pred, reduce),
            one(&NetReorderMachine, prog, pred, reduce),
            one(&CacheDelayMachine, prog, pred, reduce),
            one(&WoDef1Machine, prog, pred, reduce),
            one(&WoDef2Machine::default(), prog, pred, reduce),
            one(&WoDef2Machine { drf1_refined: true }, prog, pred, reduce),
            one(&BnrMachine, prog, pred, reduce),
        ]
    }

    let (r0, r1) = (Reg::new(0), Reg::new(1));
    let one = Value::new(1);
    type Pred = Box<dyn Fn(&Outcome) -> bool>;
    let rows: Vec<(&str, Pred, [bool; N_MACHINES])> = vec![
        (
            // W→R: every buffered/relaxed machine allows the SB split.
            "dekker.litmus",
            Box::new(move |o| o.reg(0, r0) == Value::ZERO && o.reg(1, r0) == Value::ZERO),
            [false, true, true, true, true, true, true, true, true, true],
        ),
        (
            // Needs non-multi-copy-atomic stores: only the cache
            // substrates split the readers (TSO/PSO keep one memory).
            "iriw.litmus",
            Box::new(move |o| {
                o.reg(2, r0) == one
                    && o.reg(2, r1) == Value::ZERO
                    && o.reg(3, r0) == one
                    && o.reg(3, r1) == Value::ZERO
            }),
            [false, false, false, false, false, true, true, true, true, true],
        ),
        (
            "coherence-co.litmus",
            Box::new(move |o| o.reg(1, r0) == Value::new(2) && o.reg(1, r1) == one),
            [false; N_MACHINES],
        ),
        (
            "counter.litmus",
            Box::new(|o| o.memory[1] != Value::new(2)),
            [false, false, false, false, true, true, false, false, false, false],
        ),
        (
            "lock-handoff.litmus",
            Box::new(|o| o.memory[1] != Value::new(2)),
            [false, false, false, false, true, true, false, false, false, false],
        ),
        (
            "mp-handshake.litmus",
            Box::new(move |o| o.reg(1, r1) != Value::new(42)),
            [false, false, false, false, true, true, false, false, false, false],
        ),
        (
            // Sync ping-pong on `lock` plus a spinning reader: the
            // protected write must reach the spinner on every machine
            // that honors synchronization.
            "nack-livelock.litmus",
            Box::new(move |o| o.reg(2, r1) != Value::new(42)),
            [false, false, false, false, true, true, false, false, false, false],
        ),
    ];
    assert_eq!(rows.len(), 7, "cover every shipped litmus file");
    for (file, pred, expected) in &rows {
        let prog = load(file);
        for reduce in [false, true] {
            let got = verdicts(&prog, pred.as_ref(), reduce);
            assert_eq!(
                &got,
                expected,
                "`{file}` {} verdicts [sc, wb, tso, pso, net, cd, def1, def2, def2-drf1, bnr]",
                if reduce { "reduced" } else { "full" },
            );
        }
    }
}

/// `# expect <machine> allows|forbids P<t>:r<k>=<v> [& ...]` directives
/// embedded as comments in a litmus file: the parser proper ignores
/// them (comment lines), and this test executes them, so one file
/// states both the SC verdict and the relaxed-machine verdicts — and
/// doubles as a containment assertion (each `allows` machine strictly
/// contains the `forbids` SC outcome set) without a parallel fixture.
#[test]
fn dekker_expectation_directives_hold() {
    use std::collections::BTreeSet;
    use weakord::core::Value;
    use weakord::mc::machines::{PsoMachine, TsoMachine, WoDef2Machine, WriteBufferMachine};
    use weakord::progs::{Outcome, Reg};

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/litmus/dekker.litmus");
    let src = fs::read_to_string(path).expect("readable");
    let prog = parse_program(&src).expect("parses");

    let outcomes = |machine: &str| -> BTreeSet<Outcome> {
        match machine {
            "sc" => explore(&ScMachine, &prog, Limits::default()).outcomes,
            "write-buffer" => explore(&WriteBufferMachine, &prog, Limits::default()).outcomes,
            "tso" => explore(&TsoMachine, &prog, Limits::default()).outcomes,
            "pso" => explore(&PsoMachine, &prog, Limits::default()).outcomes,
            "wo-def2" => explore(&WoDef2Machine::default(), &prog, Limits::default()).outcomes,
            other => panic!("directive names unknown machine `{other}`"),
        }
    };

    // Parse `P<t>:r<k>=<v>` conjunction terms.
    let parse_terms = |spec: &str| -> Vec<(usize, Reg, Value)> {
        spec.split('&')
            .map(|term| {
                let term = term.trim();
                let (proc_part, rest) = term.split_once(':').expect("P<t>:r<k>=<v>");
                let (reg_part, val_part) = rest.split_once('=').expect("r<k>=<v>");
                let t: usize = proc_part.strip_prefix('P').expect("P<t>").parse().expect("thread");
                let k: u8 = reg_part.strip_prefix('r').expect("r<k>").parse().expect("register");
                let v: u64 = val_part.parse().expect("value");
                (t, Reg::new(k), Value::new(v))
            })
            .collect()
    };

    let mut sc_outcomes = None;
    let mut allowed_machines = Vec::new();
    let mut directives = 0;
    for line in src.lines() {
        let Some(rest) = line.trim().strip_prefix("# expect ") else { continue };
        directives += 1;
        let mut words = rest.splitn(3, ' ');
        let machine = words.next().expect("machine name");
        let verdict = words.next().expect("allows|forbids");
        let terms = parse_terms(words.next().expect("outcome terms"));
        let set = outcomes(machine);
        let matched = set.iter().any(|o| terms.iter().all(|&(t, r, v)| o.reg(t, r) == v));
        match verdict {
            "allows" => {
                assert!(matched, "`{machine}` was expected to allow {rest:?}");
                allowed_machines.push(machine.to_string());
            }
            "forbids" => {
                assert!(!matched, "`{machine}` was expected to forbid {rest:?}");
                assert_eq!(machine, "sc", "only sc forbids the dekker split");
                sc_outcomes = Some(set);
            }
            other => panic!("unknown verdict `{other}`"),
        }
    }
    assert!(directives >= 5, "dekker.litmus lost its expectation directives");
    // The containment reading: every allowing machine strictly
    // contains the forbidding SC set.
    let sc = sc_outcomes.expect("an `expect sc forbids` directive");
    for machine in &allowed_machines {
        let set = outcomes(machine);
        assert!(
            set.is_superset(&sc) && set.len() > sc.len(),
            "`{machine}` should strictly contain the SC outcomes on dekker"
        );
    }
}

#[test]
fn counter_litmus_always_counts_to_two_under_sc() {
    use weakord::core::Value;
    let src = fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/litmus/counter.litmus"))
        .expect("readable");
    let prog = parse_program(&src).expect("parses");
    let ex = explore(&ScMachine, &prog, Limits::default());
    for o in &ex.outcomes {
        assert_eq!(o.memory[1], Value::new(2), "lost update under SC?! {o}");
    }
}
