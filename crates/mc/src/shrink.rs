//! Counterexample shrinking: delta debugging over the schedule.
//!
//! A witness interleaving that reaches a forbidden outcome is the
//! explorer's most important artifact, but with faults and reduction in
//! play the first witness found can carry steps irrelevant to the
//! violation (retries, unrelated drains, spins). This module minimizes
//! a witness with the classic `ddmin` algorithm [Zeller/Hildebrandt]:
//! repeatedly try replaying the schedule with a chunk of labels
//! removed, keep any shorter schedule that *still reproduces* the
//! target outcome, and refine the chunk size until no single label can
//! be dropped.
//!
//! Every candidate is re-validated against the machine by [`replay`] —
//! a schedule is only accepted if each label matches an enabled
//! transition from the current state and the run ends in a terminal
//! outcome satisfying the predicate. The result is therefore never a
//! guess: [`ShrinkReport::shrunk`] is itself a machine-checked witness,
//! and it is never longer than the input (shrinking only removes).

use weakord_progs::{Outcome, Program};

use crate::explore::Witness;
use crate::machine::{Label, Machine};

/// The result of shrinking one witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkReport {
    /// Length of the witness as found by the explorer.
    pub original_len: usize,
    /// The minimized witness (== the original if nothing could be
    /// removed, or if the original failed to replay). Never longer than
    /// the original.
    pub shrunk: Witness,
    /// Whether the *original* witness replayed to a matching outcome.
    /// `false` means the schedule no longer reproduces (e.g. it was
    /// recorded under a different machine or program) and no shrinking
    /// was attempted.
    pub reproduced: bool,
    /// Candidate replays attempted (the cost of the shrink).
    pub replays: usize,
}

impl ShrinkReport {
    /// Labels removed from the original witness.
    pub fn removed(&self) -> usize {
        self.original_len - self.shrunk.len()
    }
}

/// Replays `schedule` from the machine's initial state, taking at each
/// step the first enabled transition whose label matches the next
/// scheduled label. Returns the terminal outcome if every label
/// matched and the final state is terminal, `None` otherwise.
///
/// Greedy first-match is sound for validation: whatever state the
/// matched transitions lead to, the outcome returned is one the
/// machine really produces under *some* schedule no longer than the
/// input.
pub fn replay<M: Machine>(machine: &M, prog: &Program, schedule: &[Label]) -> Option<Outcome> {
    let mut state = machine.initial(prog);
    let mut succ: Vec<(Label, M::State)> = Vec::new();
    for label in schedule {
        succ.clear();
        machine.successors(prog, &state, &mut succ);
        let pos = succ.iter().position(|(l, _)| l == label)?;
        state = succ.swap_remove(pos).1;
    }
    machine.outcome(prog, &state)
}

/// Minimizes `witness` with delta debugging, re-validating every
/// candidate against `machine` via [`replay`].
///
/// The returned schedule still reproduces an outcome satisfying
/// `predicate` (when the original did) and is 1-minimal: removing any
/// single remaining label breaks the reproduction.
pub fn shrink_witness<M: Machine>(
    machine: &M,
    prog: &Program,
    witness: &[Label],
    predicate: impl Fn(&Outcome) -> bool,
) -> ShrinkReport {
    let mut replays = 0usize;
    let mut check = |cand: &[Label]| {
        replays += 1;
        replay(machine, prog, cand).is_some_and(|o| predicate(&o))
    };
    if !check(witness) {
        return ShrinkReport {
            original_len: witness.len(),
            shrunk: witness.to_vec(),
            reproduced: false,
            replays,
        };
    }
    let mut current: Vec<Label> = witness.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 && n <= current.len() {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let cand: Vec<Label> =
                current[..start].iter().chain(current[end..].iter()).copied().collect();
            if !cand.is_empty() && check(&cand) {
                // The removed chunk was irrelevant: keep the shorter
                // schedule and re-derive the granularity.
                current = cand;
                n = n.saturating_sub(1).max(2);
                reduced = true;
            } else {
                start = end;
            }
        }
        if !reduced {
            if n == current.len() {
                break; // already 1-minimal
            }
            n = (n * 2).min(current.len());
        }
    }
    ShrinkReport { original_len: witness.len(), shrunk: current, reproduced: true, replays }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{find_witness, Limits};
    use crate::machines::{CacheDelayMachine, ScMachine, WriteBufferMachine};
    use weakord_progs::litmus;

    #[test]
    fn replay_validates_a_found_witness() {
        let lit = litmus::fig1_dekker();
        let w =
            find_witness(&WriteBufferMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
                .expect("write buffer violates Dekker");
        let outcome = replay(&WriteBufferMachine, &lit.program, &w).expect("witness replays");
        assert!((lit.non_sc)(&outcome));
    }

    #[test]
    fn replay_rejects_a_schedule_for_the_wrong_machine() {
        // An SC run can never take a write-buffer drain label.
        let lit = litmus::fig1_dekker();
        let w =
            find_witness(&WriteBufferMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
                .expect("write buffer violates Dekker");
        assert!(
            replay(&ScMachine, &lit.program, &w).is_none(),
            "drain labels must not match any SC transition"
        );
    }

    #[test]
    fn shrunk_witnesses_stay_valid_and_never_grow() {
        let lit = litmus::fig1_dekker();
        for report in [
            {
                let w = find_witness(&WriteBufferMachine, &lit.program, Limits::default(), |o| {
                    (lit.non_sc)(o)
                })
                .unwrap();
                shrink_witness(&WriteBufferMachine, &lit.program, &w, |o| (lit.non_sc)(o))
            },
            {
                let w = find_witness(&CacheDelayMachine, &lit.program, Limits::default(), |o| {
                    (lit.non_sc)(o)
                })
                .unwrap();
                shrink_witness(&CacheDelayMachine, &lit.program, &w, |o| (lit.non_sc)(o))
            },
        ] {
            assert!(report.reproduced);
            assert!(report.shrunk.len() <= report.original_len, "shrinking never grows");
            assert!(report.replays >= 1);
        }
        // And the shrunk schedule itself still reproduces.
        let w =
            find_witness(&WriteBufferMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
                .unwrap();
        let report = shrink_witness(&WriteBufferMachine, &lit.program, &w, |o| (lit.non_sc)(o));
        let outcome =
            replay(&WriteBufferMachine, &lit.program, &report.shrunk).expect("shrunk replays");
        assert!((lit.non_sc)(&outcome));
    }

    #[test]
    fn shrink_is_one_minimal() {
        let lit = litmus::fig1_dekker();
        let w =
            find_witness(&WriteBufferMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
                .unwrap();
        let report = shrink_witness(&WriteBufferMachine, &lit.program, &w, |o| (lit.non_sc)(o));
        let s = &report.shrunk;
        for skip in 0..s.len() {
            let cand: Vec<Label> =
                s.iter().enumerate().filter(|(i, _)| *i != skip).map(|(_, l)| *l).collect();
            let still =
                replay(&WriteBufferMachine, &lit.program, &cand).is_some_and(|o| (lit.non_sc)(&o));
            assert!(!still, "label {skip} of the shrunk witness is removable");
        }
    }

    #[test]
    fn a_non_reproducing_witness_is_returned_unchanged() {
        let lit = litmus::fig1_dekker();
        // SC never reaches the forbidden outcome, so any schedule fails.
        let w = find_witness(&ScMachine, &lit.program, Limits::default(), |o| !(lit.non_sc)(o))
            .expect("SC has allowed outcomes");
        let report = shrink_witness(&ScMachine, &lit.program, &w, |o| (lit.non_sc)(o));
        assert!(!report.reproduced);
        assert_eq!(report.shrunk, w);
    }
}
