//! Shasha & Snir's road not taken: static delay sets.
//!
//! Section 2.1 of the paper contrasts its hardware contract with the
//! compile-time alternative — statically identify the minimal pairs of
//! accesses whose program order must be enforced and delay just those.
//! This example computes delay sets for the litmus suite, then closes
//! the loop: promoting the paired accesses to synchronization (which
//! weakly ordered hardware executes strongly ordered) restores
//! sequential consistency on the Section 5 implementation.
//!
//! Run with: `cargo run --example delay_sets`

use weakord::mc::machines::WoDef2Machine;
use weakord::mc::{appears_sc, Limits};
use weakord::progs::delay::{delay_set, enforce_delays};
use weakord::progs::litmus;

fn main() {
    println!(
        "{:<16} {:>8} {:>7} {:>6}   first delay pair",
        "litmus", "accesses", "cycles", "pairs"
    );
    for lit in litmus::all() {
        let ds = delay_set(&lit.program);
        println!(
            "{:<16} {:>8} {:>7} {:>6}   {}",
            lit.name,
            ds.accesses.len(),
            ds.cycles,
            ds.pairs.len(),
            ds.pairs.first().map(|p| p.to_string()).unwrap_or_else(|| "—".into()),
        );
    }
    println!("\nEnforcing the delays (pairs become synchronization accesses):\n");
    for lit in litmus::all() {
        let enforced = enforce_delays(&lit.program);
        let before = appears_sc(&WoDef2Machine::default(), &lit.program, Limits::default());
        let after = appears_sc(&WoDef2Machine::default(), &enforced, Limits::default());
        println!(
            "{:<16} wo-def2: {} -> {}",
            lit.name,
            if before.appears_sc { "appears SC" } else { "non-SC possible" },
            if after.appears_sc { "appears SC" } else { "STILL non-SC (bug!)" },
        );
        assert!(after.appears_sc);
    }
    println!(
        "\nThe contract view and the compiler view agree: what Shasha & Snir\n\
         would delay is exactly what DRF0 asks the programmer to synchronize."
    );
}
