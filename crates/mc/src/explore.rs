//! Exhaustive state-space exploration.
//!
//! Depth-first search with a visited set over a [`Machine`]'s state
//! graph, collecting the set of reachable terminal [`Outcome`]s. Spin
//! loops revisit states and are handled by deduplication, so unbounded
//! spins do not prevent termination.

use std::collections::{BTreeSet, HashSet};

use weakord_progs::{Outcome, Program};

use crate::machine::{Label, Machine};

/// Exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of distinct states to visit before giving up and
    /// marking the exploration truncated.
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_states: 4_000_000 }
    }
}

/// The result of exploring one machine on one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// Every reachable terminal outcome.
    pub outcomes: BTreeSet<Outcome>,
    /// Number of distinct states visited.
    pub states: usize,
    /// Number of deadlocked states (no transitions, not terminal).
    pub deadlocks: usize,
    /// `true` if the state cap was hit; `outcomes` is then a lower
    /// bound.
    pub truncated: bool,
}

impl Exploration {
    /// Returns `true` if any deadlock was reached.
    pub fn has_deadlock(&self) -> bool {
        self.deadlocks > 0
    }
}

/// Explores the full reachable state space of `machine` running `prog`.
pub fn explore<M: Machine>(machine: &M, prog: &Program, limits: Limits) -> Exploration {
    let initial = machine.initial(prog);
    let mut visited: HashSet<M::State> = HashSet::new();
    let mut stack: Vec<M::State> = Vec::new();
    let mut outcomes = BTreeSet::new();
    let mut deadlocks = 0usize;
    let mut truncated = false;
    visited.insert(initial.clone());
    stack.push(initial);
    let mut succ: Vec<(Label, M::State)> = Vec::new();
    while let Some(state) = stack.pop() {
        if let Some(outcome) = machine.outcome(prog, &state) {
            outcomes.insert(outcome);
            continue;
        }
        succ.clear();
        machine.successors(prog, &state, &mut succ);
        if succ.is_empty() {
            deadlocks += 1;
            continue;
        }
        for (_, next) in succ.drain(..) {
            if visited.len() >= limits.max_states {
                truncated = true;
                break;
            }
            if visited.insert(next.clone()) {
                stack.push(next);
            }
        }
        if truncated {
            break;
        }
    }
    Exploration { outcomes, states: visited.len(), deadlocks, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::ScMachine;
    use weakord_progs::litmus;

    #[test]
    fn sc_dekker_has_three_read_combinations() {
        let lit = litmus::fig1_dekker();
        let ex = explore(&ScMachine, &lit.program, Limits::default());
        assert!(!ex.truncated);
        assert_eq!(ex.deadlocks, 0);
        // SC allows (0,1), (1,0), (1,1) but never (0,0).
        assert_eq!(ex.outcomes.len(), 3);
        assert!(ex.outcomes.iter().all(|o| !(lit.non_sc)(o)));
    }

    #[test]
    fn state_cap_marks_truncation() {
        let lit = litmus::iriw();
        let ex = explore(&ScMachine, &lit.program, Limits { max_states: 3 });
        assert!(ex.truncated);
    }
}

/// A step of a witness trace: the label and a rendering of what it did.
pub type Witness = Vec<Label>;

/// Searches for a terminal state whose outcome satisfies `predicate`
/// and returns the transition labels leading to it (a *witness
/// interleaving*), or `None` if no reachable terminal outcome matches
/// within the limits.
///
/// Breadth-first, so the witness is one of the shortest.
pub fn find_witness<M: Machine>(
    machine: &M,
    prog: &Program,
    limits: Limits,
    predicate: impl Fn(&Outcome) -> bool,
) -> Option<Witness> {
    use std::collections::HashMap;
    use std::collections::VecDeque;

    let initial = machine.initial(prog);
    // parent[state] = (predecessor, label taking predecessor -> state)
    let mut parent: HashMap<M::State, Option<(M::State, Label)>> = HashMap::new();
    parent.insert(initial.clone(), None);
    let mut queue = VecDeque::new();
    queue.push_back(initial);
    let mut succ: Vec<(Label, M::State)> = Vec::new();
    while let Some(state) = queue.pop_front() {
        if let Some(outcome) = machine.outcome(prog, &state) {
            if predicate(&outcome) {
                // Reconstruct the path.
                let mut labels = Vec::new();
                let mut cur = &state;
                while let Some(Some((prev, label))) = parent.get(cur) {
                    labels.push(*label);
                    cur = prev;
                }
                labels.reverse();
                return Some(labels);
            }
            continue;
        }
        succ.clear();
        machine.successors(prog, &state, &mut succ);
        for (label, next) in succ.drain(..) {
            if parent.len() >= limits.max_states {
                return None;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next.clone()) {
                e.insert(Some((state.clone(), label)));
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod witness_tests {
    use super::*;
    use crate::machines::{ScMachine, WriteBufferMachine};
    use weakord_progs::litmus;

    #[test]
    fn witness_found_for_reachable_outcome() {
        let lit = litmus::fig1_dekker();
        let w =
            find_witness(&WriteBufferMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
                .expect("write buffers can kill both processors");
        // The witness contains both reads bypassing both writes.
        let ops = w.iter().filter(|l| matches!(l, Label::Op(_))).count();
        assert!(ops >= 4, "witness too short: {w:?}");
    }

    #[test]
    fn no_witness_for_unreachable_outcome() {
        let lit = litmus::fig1_dekker();
        assert!(find_witness(&ScMachine, &lit.program, Limits::default(), |o| (lit.non_sc)(o))
            .is_none());
    }
}
