//! An in-tree FxHash-style 64-bit hasher and state fingerprinter.
//!
//! The parallel explorer ([`crate::explore`]) hashes every candidate
//! state twice per dedup probe — once to pick a shard, once inside the
//! shard's hash set — so the hasher is on the hot path. FxHash
//! (rustc's multiply-rotate hash) is 3-5× faster than the default
//! SipHash for the small fixed-shape `Machine::State` values we hash,
//! and we need no DoS resistance: all inputs are machine states we
//! generated ourselves.
//!
//! The [`fingerprint`] of a state doubles as its shard selector: the
//! final multiply diffuses entropy into the *high* bits, so the shard
//! index is taken from the top of the word.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The FxHash multiplier: `2^64 / φ`, rounded to odd.
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A 64-bit FxHash-style streaming hasher (multiply-rotate, as in
/// rustc's `FxHasher`).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Mix in the length so "ab" ++ "" and "a" ++ "b" differ.
            self.add(u64::from_le_bytes(buf) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s, for use as the
/// hasher of `HashSet`/`HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The 64-bit fingerprint of a hashable value.
///
/// Stable within a process run (FxHash keys on the value's `Hash`
/// implementation only — no per-process randomness), so fingerprints
/// computed by different worker threads agree.
#[inline]
pub fn fingerprint<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// The 64-bit fingerprint of a raw byte string, fed through the hasher
/// directly (no `Hash` length prefix). This is the visited-set
/// fingerprint of an encoded state: stable across threads and runs,
/// and cheap — the byte path consumes 8-byte words.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_type_sensitive() {
        assert_eq!(fingerprint(&(1u64, 2u64)), fingerprint(&(1u64, 2u64)));
        assert_ne!(fingerprint(&(1u64, 2u64)), fingerprint(&(2u64, 1u64)));
        assert_ne!(fingerprint(&1u64), fingerprint(&2u64));
    }

    #[test]
    fn byte_stream_tail_is_length_mixed() {
        // Same concatenated bytes, different chunk boundaries, must not
        // be forced equal by zero padding.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn high_bits_spread_across_shards() {
        // The shard selector uses the top 6 bits; consecutive small
        // inputs should not all collapse into one shard.
        use std::collections::HashSet;
        let shards: HashSet<u64> = (0u64..64).map(|i| fingerprint(&i) >> 58).collect();
        assert!(shards.len() > 16, "only {} distinct shards", shards.len());
    }
}
